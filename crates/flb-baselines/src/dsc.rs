//! DSC — Dominant Sequence Clustering (Yang & Gerasoulis, IEEE TPDS 1994).
//!
//! The clustering step of the multi-step method: tasks are grouped into
//! clusters on an *unbounded* number of virtual processors so that heavily
//! communicating tasks share a cluster (their edges are "zeroed").
//!
//! Implementation notes (see DESIGN.md, item 5): tasks are examined in
//! descending `tlevel + blevel` priority (the dominant-sequence heuristic)
//! among *free* tasks — tasks whose predecessors have all been examined.
//! For each examined task the minimisation procedure evaluates appending it
//! to each predecessor's cluster (zeroing every incoming edge from that
//! cluster at once) and accepts the move only when it strictly lowers the
//! task's start time (`tlevel`) versus staying in a fresh cluster. Bottom
//! levels are kept static and the DSRW partial-free refinement is omitted —
//! the classic simplifications, which preserve DSC's `O((E+V) log V)` cost
//! and its qualitative behaviour (the DSC-LLB quality band of the paper is
//! the acceptance test).

use flb_ds::IndexedMinHeap;
use flb_graph::levels::bottom_levels;
use flb_graph::{TaskGraph, TaskId, Time};
use std::cmp::Reverse;

/// Result of the clustering step.
#[derive(Clone, Debug)]
pub struct Clustering {
    /// Each cluster's tasks in execution order.
    pub clusters: Vec<Vec<TaskId>>,
    /// `cluster_of[t]` = index of the cluster containing task `t`.
    pub cluster_of: Vec<usize>,
    /// Start time of each task in the unbounded-processor clustered
    /// schedule (its final `tlevel`).
    pub tlevel: Vec<Time>,
}

impl Clustering {
    /// Number of clusters `C`.
    #[must_use]
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Parallel time of the clustered (unbounded processors) schedule.
    #[must_use]
    pub fn parallel_time(&self, graph: &TaskGraph) -> Time {
        graph
            .tasks()
            .map(|t| self.tlevel[t.0] + graph.comp(t))
            .max()
            .unwrap_or(0)
    }
}

/// Runs DSC on `graph`.
#[must_use]
pub fn cluster(graph: &TaskGraph) -> Clustering {
    let v = graph.num_tasks();
    let bl = bottom_levels(graph);
    let mut missing: Vec<usize> = graph.tasks().map(|t| graph.in_degree(t)).collect();
    let mut tlevel: Vec<Time> = vec![0; v];
    let mut cluster_of: Vec<usize> = vec![usize::MAX; v];
    let mut clusters: Vec<Vec<TaskId>> = Vec::new();
    // Finish time of the last task of each cluster.
    let mut avail: Vec<Time> = Vec::new();

    // Free tasks by descending (tlevel + blevel); the id tie-break of the
    // heap keeps runs deterministic.
    let mut free: IndexedMinHeap<Reverse<Time>> = IndexedMinHeap::new(v);
    for t in graph.entry_tasks() {
        free.insert(t.0, Reverse(bl[t.0]));
    }

    while let Some((t, _)) = free.pop() {
        let t = TaskId(t);
        // Start time with no merge: every message pays its communication.
        let no_merge: Time = graph
            .preds(t)
            .iter()
            .map(|&(p, c)| tlevel[p.0] + graph.comp(p) + c)
            .max()
            .unwrap_or(0);

        // Candidate clusters: those of the predecessors. Appending `t` to
        // cluster `c` zeroes every incoming edge whose source is in `c` but
        // serialises `t` after the cluster's last task.
        let mut best: Option<(Time, usize)> = None;
        let mut cand: Vec<usize> = graph
            .preds(t)
            .iter()
            .map(|&(p, _)| cluster_of[p.0])
            .collect();
        cand.sort_unstable();
        cand.dedup();
        for c in cand {
            let arrivals = graph
                .preds(t)
                .iter()
                .map(|&(p, comm)| {
                    let ft = tlevel[p.0] + graph.comp(p);
                    if cluster_of[p.0] == c {
                        ft
                    } else {
                        ft + comm
                    }
                })
                .max()
                .unwrap_or(0);
            let start = arrivals.max(avail[c]);
            if best.is_none_or(|b| (start, c) < b) {
                best = Some((start, c));
            }
        }

        match best {
            // Merge only when strictly better than a fresh cluster.
            Some((start, c)) if start < no_merge => {
                tlevel[t.0] = start;
                cluster_of[t.0] = c;
                clusters[c].push(t);
                avail[c] = start + graph.comp(t);
            }
            _ => {
                tlevel[t.0] = no_merge;
                cluster_of[t.0] = clusters.len();
                clusters.push(vec![t]);
                avail.push(no_merge + graph.comp(t));
            }
        }

        for &(s, _) in graph.succs(t) {
            missing[s.0] -= 1;
            if missing[s.0] == 0 {
                // Priority with the now-final tlevels of all predecessors
                // (no edge into `s` is zeroed yet: `s` is unclustered).
                let tl: Time = graph
                    .preds(s)
                    .iter()
                    .map(|&(p, c)| tlevel[p.0] + graph.comp(p) + c)
                    .max()
                    .unwrap_or(0);
                free.insert(s.0, Reverse(tl + bl[s.0]));
            }
        }
    }

    Clustering {
        clusters,
        cluster_of,
        tlevel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flb_graph::paper::fig1;
    use flb_graph::{gen, TaskGraphBuilder};

    /// Clustering must keep every cluster internally consistent: tasks in
    /// execution order, no overlap, all messages (zeroed inside, full
    /// across) arrived.
    fn check_clustering(g: &TaskGraph, cl: &Clustering) {
        // Every task in exactly one cluster.
        let mut seen = vec![false; g.num_tasks()];
        for (ci, tasks) in cl.clusters.iter().enumerate() {
            let mut prev_finish = 0;
            for &t in tasks {
                assert_eq!(cl.cluster_of[t.0], ci);
                assert!(!seen[t.0]);
                seen[t.0] = true;
                // Sequential within the cluster.
                assert!(cl.tlevel[t.0] >= prev_finish, "cluster {ci} overlaps");
                prev_finish = cl.tlevel[t.0] + g.comp(t);
            }
        }
        assert!(seen.iter().all(|&s| s));
        // Message arrivals respected.
        for t in g.tasks() {
            for &(p, c) in g.preds(t) {
                let delay = if cl.cluster_of[p.0] == cl.cluster_of[t.0] {
                    0
                } else {
                    c
                };
                assert!(
                    cl.tlevel[t.0] >= cl.tlevel[p.0] + g.comp(p) + delay,
                    "edge {p} -> {t} violated"
                );
            }
        }
    }

    #[test]
    fn chain_collapses_to_one_cluster() {
        let g = gen::chain(6);
        let cl = cluster(&g);
        check_clustering(&g, &cl);
        assert_eq!(cl.num_clusters(), 1);
        assert_eq!(cl.parallel_time(&g), g.total_comp());
    }

    #[test]
    fn independent_tasks_stay_apart() {
        let g = gen::independent(5);
        let cl = cluster(&g);
        check_clustering(&g, &cl);
        assert_eq!(cl.num_clusters(), 5);
        assert_eq!(cl.parallel_time(&g), 1);
    }

    #[test]
    fn fig1_clustering_is_consistent_and_helps() {
        let g = fig1();
        let cl = cluster(&g);
        check_clustering(&g, &cl);
        // Clustering must beat the fully-communicating critical path (15+).
        let cp = flb_graph::levels::critical_path(&g);
        assert!(cl.parallel_time(&g) <= cp);
        assert!(cl.num_clusters() >= 2); // the graph has real parallelism
    }

    #[test]
    fn heavy_communication_forces_merging() {
        // Fork with huge comms: everything should collapse into few
        // clusters (zeroing dominates).
        let mut b = TaskGraphBuilder::new();
        let root = b.add_task(1);
        let mut leaves = Vec::new();
        for _ in 0..4 {
            let l = b.add_task(1);
            b.add_edge(root, l, 1000).unwrap();
            leaves.push(l);
        }
        let g = b.build().unwrap();
        let cl = cluster(&g);
        check_clustering(&g, &cl);
        // The first leaf examined joins the root's cluster; the rest cannot
        // (serialisation becomes worse than paying 1000? No: 1000 >> comp,
        // so they all want in; appending is still cheaper).
        assert!(cl.num_clusters() < 5);
        assert!(cl.parallel_time(&g) < 1001);
    }

    #[test]
    fn clustering_respects_random_graphs() {
        for seed in 0..10 {
            let topo = gen::random_layered(
                &gen::RandomLayeredSpec {
                    tasks: 50,
                    layers: 5,
                    edge_prob: 0.3,
                    max_skip: 2,
                },
                seed,
            );
            let g = flb_graph::costs::CostModel::paper_default(5.0).apply(&topo, seed);
            let cl = cluster(&g);
            check_clustering(&g, &cl);
        }
    }
}
