//! HEFT — Heterogeneous Earliest Finish Time (Topcuoglu, Hariri & Wu,
//! IEEE TPDS 2002).
//!
//! The reference list scheduler for related/heterogeneous machines, added
//! alongside DLS for the X9 experiment (the FLB authors' own follow-up
//! work targeted heterogeneous systems). Two phases:
//!
//! 1. **prioritising** — tasks are ranked by *upward rank*:
//!    `rank(t) = mean_exec(t) + max over succs (comm + rank(s))`, where
//!    `mean_exec` averages the task's execution time over all processors;
//!    tasks are scheduled in descending rank (a topological order).
//! 2. **processor selection** — each task goes to the processor minimising
//!    its *earliest finish time*, using insertion into idle slots.
//!
//! On a homogeneous machine HEFT degenerates to a bottom-level list
//! scheduler with insertion — close to the original MCP.

use flb_graph::{TaskGraph, TaskId, Time};
use flb_sched::{Machine, ProcId, Schedule, ScheduleBuilder, Scheduler};

/// The HEFT scheduling algorithm.
#[derive(Clone, Copy, Debug, Default)]
pub struct Heft;

impl Heft {
    /// Upward ranks (scaled by the processor count so all arithmetic stays
    /// in integers: `rank_scaled = P · comm-path + Σ exec` terms).
    ///
    /// Using `Σ_p exec(t, p)` instead of the mean (a constant factor of
    /// `P`) keeps ordering identical while avoiding floats.
    fn upward_ranks(graph: &TaskGraph, machine: &Machine) -> Vec<Time> {
        let p = machine.num_procs() as Time;
        let sum_exec = |t: TaskId| -> Time {
            machine
                .procs()
                .map(|q| machine.exec_time(graph.comp(t), q))
                .sum()
        };
        let mut rank = vec![0; graph.num_tasks()];
        for &t in graph.topological_order().iter().rev() {
            let tail = graph
                .succs(t)
                .iter()
                .map(|&(s, c)| c * p + rank[s.0])
                .max()
                .unwrap_or(0);
            rank[t.0] = sum_exec(t) + tail;
        }
        rank
    }
}

impl Scheduler for Heft {
    fn name(&self) -> &'static str {
        "HEFT"
    }

    fn schedule(&self, graph: &TaskGraph, machine: &Machine) -> Schedule {
        let rank = Self::upward_ranks(graph, machine);
        // Descending upward rank is a topological order: along every edge,
        // rank strictly decreases (exec sums are positive).
        let mut order: Vec<TaskId> = graph.tasks().collect();
        order.sort_by_key(|&t| (std::cmp::Reverse(rank[t.0]), t));

        let mut builder = ScheduleBuilder::new(graph, machine);
        for t in order {
            // Earliest finish over all processors, insertion allowed.
            let mut best: Option<(Time, Time, ProcId)> = None; // (eft, est, p)
            for q in machine.procs() {
                let est = builder.est_insertion(t, q);
                let eft = est + machine.exec_time(graph.comp(t), q);
                if best.is_none_or(|(b_eft, _, b_q)| (eft, q) < (b_eft, b_q)) {
                    best = Some((eft, est, q));
                }
            }
            let (_, est, q) = best.expect("machine has processors");
            builder.place_insert(t, q, est);
        }
        builder.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flb_graph::costs::CostModel;
    use flb_graph::gen;
    use flb_graph::paper::fig1;
    use flb_sched::validate::validate;

    #[test]
    fn heft_fig1_is_valid() {
        let g = fig1();
        let s = Heft.schedule(&g, &Machine::new(2));
        assert_eq!(validate(&g, &s), Ok(()));
        assert!(s.makespan() <= 20);
    }

    #[test]
    fn ranks_decrease_along_edges() {
        let g = gen::lu(7);
        for m in [Machine::new(3), Machine::related(vec![1, 2, 4])] {
            let rank = Heft::upward_ranks(&g, &m);
            for t in g.tasks() {
                for &(s, _) in g.succs(t) {
                    assert!(rank[t.0] > rank[s.0], "edge {t} -> {s} rank order");
                }
            }
        }
    }

    #[test]
    fn heft_prefers_fast_processors() {
        // A single chain on [1, 10]: everything must land on the fast
        // processor; makespan = total comp.
        let g = gen::chain(5);
        let m = Machine::related(vec![1, 10]);
        let s = Heft.schedule(&g, &m);
        assert_eq!(validate(&g, &s), Ok(()));
        for t in g.tasks() {
            assert_eq!(s.proc(t), ProcId(0), "{t} on the slow processor");
        }
        assert_eq!(s.makespan(), g.total_comp());
    }

    #[test]
    fn heft_uses_slow_processors_when_worthwhile() {
        // Many independent equal tasks: even a 2x-slower processor should
        // receive some work (finishing there still beats queueing).
        let g = gen::independent(12);
        let m = Machine::related(vec![1, 2]);
        let s = Heft.schedule(&g, &m);
        assert_eq!(validate(&g, &s), Ok(()));
        let slow_load = s.tasks_on(ProcId(1)).len();
        assert!(slow_load >= 2, "slow processor got {slow_load} tasks");
        // Optimal split of 12 unit tasks on speeds (1, 1/2): 8 fast + 4
        // slow gives makespan 8.
        assert_eq!(s.makespan(), 8);
    }

    #[test]
    fn heft_valid_on_paper_suite_and_hetero_machines() {
        for topo in [gen::lu(7), gen::stencil(4, 4), gen::fft(3)] {
            let g = CostModel::paper_default(5.0).apply(&topo, 23);
            for m in [
                Machine::new(1),
                Machine::new(4),
                Machine::related(vec![1, 1, 2, 4]),
            ] {
                let s = Heft.schedule(&g, &m);
                assert_eq!(validate(&g, &s), Ok(()), "{} on {m:?}", g.name());
                assert!(s.makespan() >= flb_sched::bounds::makespan_lower_bound_on(&g, &m));
            }
        }
    }

    #[test]
    fn heft_beats_speed_oblivious_flb_on_wide_spread() {
        use flb_core::Flb;
        let g = CostModel::paper_default(1.0).apply(&gen::stencil(6, 6), 4);
        let m = Machine::related(vec![1, 1, 8, 8]);
        let heft = Heft.schedule(&g, &m).makespan();
        let flb = Flb::default().schedule(&g, &m).makespan();
        assert!(
            heft <= flb,
            "HEFT ({heft}) should not lose to speed-oblivious FLB ({flb})"
        );
    }
}
