//! LLB — List-based Load Balancing (Rădulescu, van Gemund & Lin,
//! IPPS/SPDP 1999).
//!
//! The second step of the multi-step method: maps the clusters produced by
//! [`crate::dsc`] onto the `P` physical processors while ordering tasks. A
//! cluster is *mapped* once any of its tasks has been scheduled; from then
//! on all its tasks must run on that processor.
//!
//! Each iteration (paper §3.3): the destination processor is the one
//! becoming idle the earliest; the candidates are (a) the highest-priority
//! ready task already mapped to that processor and (b) the highest-priority
//! unmapped ready task; whichever starts earlier is scheduled (scheduling an
//! unmapped task maps its whole cluster).
//!
//! **Priority ambiguity** (DESIGN.md item 6): the FLB paper's wording says
//! the candidates have "the least bottom level", while load-balancing a
//! critical path argues for the greatest. Both rules are provided as
//! [`LlbPriority`]; the default is [`LlbPriority::Greatest`], which is the
//! variant that lands in the paper's reported quality band (DSC-LLB within
//! ~20–40 % of MCP — measured in EXPERIMENTS.md; the `Least` variant is
//! part of ablation A2's sweep).
//!
//! When the earliest-idle processor has no candidate (no unmapped ready
//! task and none of its own mapped tasks ready), the next-earliest
//! processor with a candidate is used — the paper does not specify this
//! corner case; some processor always qualifies because the ready set is
//! non-empty.

use crate::dsc::Clustering;
use flb_ds::IndexedMinHeap;
use flb_graph::levels::bottom_levels;
use flb_graph::{TaskGraph, TaskId, Time};
use flb_sched::{Machine, ProcId, Schedule, ScheduleBuilder};

/// Which bottom level wins among ready candidates.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LlbPriority {
    /// Greatest bottom level first (critical tasks first) — default.
    #[default]
    Greatest,
    /// Least bottom level first — the FLB paper's literal wording.
    Least,
}

impl LlbPriority {
    /// Heap key so that the preferred task has the *smallest* key.
    fn key(self, bl: Time) -> Time {
        match self {
            LlbPriority::Greatest => Time::MAX - bl,
            LlbPriority::Least => bl,
        }
    }
}

/// Maps `clustering` onto `machine`, ordering tasks by LLB.
#[must_use]
pub fn map_clusters(
    graph: &TaskGraph,
    machine: &Machine,
    clustering: &Clustering,
    priority: LlbPriority,
) -> Schedule {
    let v = graph.num_tasks();
    let p = machine.num_procs();
    let bl = bottom_levels(graph);
    let mut builder = ScheduleBuilder::new(graph, machine);
    let mut missing: Vec<usize> = graph.tasks().map(|t| graph.in_degree(t)).collect();

    // Cluster -> processor once mapped.
    let mut cluster_proc: Vec<Option<ProcId>> = vec![None; clustering.num_clusters()];
    // Ready tasks of unmapped clusters, keyed by priority.
    let mut unmapped: IndexedMinHeap<Time> = IndexedMinHeap::new(v);
    // Ready tasks per cluster while the cluster is unmapped (so the whole
    // batch can be promoted on mapping).
    let mut unmapped_by_cluster: Vec<Vec<TaskId>> = vec![Vec::new(); clustering.num_clusters()];
    // Ready tasks whose cluster is mapped, one heap per processor.
    let mut mapped: Vec<IndexedMinHeap<Time>> = (0..p).map(|_| IndexedMinHeap::new(v)).collect();
    // Processors by PRT.
    let mut procs: IndexedMinHeap<Time> = IndexedMinHeap::new(p);
    for q in machine.procs() {
        procs.insert(q.0, 0);
    }

    // A task entering the ready set.
    let enqueue = |t: TaskId,
                   unmapped: &mut IndexedMinHeap<Time>,
                   unmapped_by_cluster: &mut Vec<Vec<TaskId>>,
                   mapped: &mut Vec<IndexedMinHeap<Time>>,
                   cluster_proc: &[Option<ProcId>]| {
        let c = clustering.cluster_of[t.0];
        match cluster_proc[c] {
            Some(q) => mapped[q.0].insert(t.0, priority.key(bl[t.0])),
            None => {
                unmapped.insert(t.0, priority.key(bl[t.0]));
                unmapped_by_cluster[c].push(t);
            }
        }
    };

    for t in graph.entry_tasks() {
        enqueue(
            t,
            &mut unmapped,
            &mut unmapped_by_cluster,
            &mut mapped,
            &cluster_proc,
        );
    }

    let mut placed = 0usize;
    while placed < v {
        // Destination: earliest-idle processor that has a candidate. Pop
        // processors (in PRT order) into a scratch list until one fits.
        let mut scratch: Vec<(usize, Time)> = Vec::new();
        let (dest, task, start) = loop {
            let (q, &prt) = procs.peek().expect("non-empty machine");
            let dest = ProcId(q);
            let cand_mapped = mapped[q].peek().map(|(t, _)| TaskId(t));
            let cand_unmapped = unmapped.peek().map(|(t, _)| TaskId(t));
            let choice = match (cand_mapped, cand_unmapped) {
                (None, None) => None,
                (Some(a), None) => Some((a, builder.est(a, dest))),
                (None, Some(b)) => Some((b, builder.est(b, dest))),
                (Some(a), Some(b)) => {
                    let (ea, eb) = (builder.est(a, dest), builder.est(b, dest));
                    // Earlier start wins; ties keep the cluster together.
                    if ea <= eb {
                        Some((a, ea))
                    } else {
                        Some((b, eb))
                    }
                }
            };
            match choice {
                Some((t, est)) => break (dest, t, est),
                None => {
                    // No candidate for this processor; try the next one.
                    scratch.push((q, prt));
                    procs.pop();
                }
            }
        };
        for (q, prt) in scratch {
            procs.insert(q, prt);
        }

        // Commit: map the cluster if needed, promote its ready tasks.
        let c = clustering.cluster_of[task.0];
        if cluster_proc[c].is_none() {
            cluster_proc[c] = Some(dest);
            for t in std::mem::take(&mut unmapped_by_cluster[c]) {
                let removed = unmapped.remove(t.0);
                debug_assert!(removed.is_some());
                mapped[dest.0].insert(t.0, priority.key(bl[t.0]));
            }
        }
        let removed = mapped[dest.0].remove(task.0);
        debug_assert!(removed.is_some(), "candidate came from a ready heap");

        builder.place(task, dest, start);
        placed += 1;
        procs.update(dest.0, builder.prt(dest));

        for &(s, _) in graph.succs(task) {
            missing[s.0] -= 1;
            if missing[s.0] == 0 {
                enqueue(
                    s,
                    &mut unmapped,
                    &mut unmapped_by_cluster,
                    &mut mapped,
                    &cluster_proc,
                );
            }
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsc;
    use flb_graph::paper::fig1;
    use flb_graph::{gen, TaskGraph};
    use flb_sched::validate::validate;

    fn llb(g: &TaskGraph, p: usize, prio: LlbPriority) -> Schedule {
        let cl = dsc::cluster(g);
        map_clusters(g, &Machine::new(p), &cl, prio)
    }

    #[test]
    fn fig1_both_priorities_valid() {
        let g = fig1();
        for prio in [LlbPriority::Greatest, LlbPriority::Least] {
            let s = llb(&g, 2, prio);
            assert_eq!(validate(&g, &s), Ok(()), "{prio:?}");
        }
    }

    #[test]
    fn clusters_stay_together() {
        let g = gen::lu(8);
        let cl = dsc::cluster(&g);
        let s = map_clusters(&g, &Machine::new(3), &cl, LlbPriority::Greatest);
        assert_eq!(validate(&g, &s), Ok(()));
        for tasks in &cl.clusters {
            let procs: Vec<_> = tasks.iter().map(|&t| s.proc(t)).collect();
            assert!(
                procs.windows(2).all(|w| w[0] == w[1]),
                "cluster split across processors"
            );
        }
    }

    #[test]
    fn single_processor_serialises() {
        let g = gen::laplace(4);
        let s = llb(&g, 1, LlbPriority::Greatest);
        assert_eq!(validate(&g, &s), Ok(()));
        assert_eq!(s.makespan(), g.total_comp());
    }

    #[test]
    fn more_clusters_than_procs() {
        let g = gen::independent(10);
        let s = llb(&g, 3, LlbPriority::Greatest);
        assert_eq!(validate(&g, &s), Ok(()));
        // Load balancing: 10 unit tasks on 3 procs -> makespan 4.
        assert!(s.makespan() <= 4);
    }

    #[test]
    fn fallback_skips_idle_proc_without_candidates() {
        // A pure chain collapses into one DSC cluster. Once its head is on
        // p0, the earliest-idle processor is p1 — which can never run the
        // mapped tasks — so every iteration exercises the next-processor
        // fallback, and the whole chain must stay on p0 with no idle time.
        let g = gen::chain(5);
        let cl = dsc::cluster(&g);
        assert_eq!(cl.num_clusters(), 1);
        let s = map_clusters(&g, &Machine::new(3), &cl, LlbPriority::Greatest);
        assert_eq!(validate(&g, &s), Ok(()));
        let p = s.proc(flb_graph::TaskId(0));
        for t in g.tasks() {
            assert_eq!(s.proc(t), p, "chain split across processors");
        }
        assert_eq!(s.makespan(), g.total_comp());
    }

    #[test]
    fn random_graphs_all_valid() {
        for seed in 0..8 {
            let topo = gen::random_layered(
                &gen::RandomLayeredSpec {
                    tasks: 40,
                    layers: 5,
                    edge_prob: 0.3,
                    max_skip: 2,
                },
                seed,
            );
            let g = flb_graph::costs::CostModel::paper_default(5.0).apply(&topo, seed);
            for prio in [LlbPriority::Greatest, LlbPriority::Least] {
                for p in [1, 2, 4] {
                    let s = llb(&g, p, prio);
                    assert_eq!(validate(&g, &s), Ok(()), "seed {seed} p {p} {prio:?}");
                }
            }
        }
    }
}
