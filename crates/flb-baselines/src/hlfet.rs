//! HLFET — Highest Level First with Estimated Times (Adam, Chandy & Dickson
//! 1974; the form with communication delays as surveyed by Kwok & Ahmad,
//! the paper's reference [5]).
//!
//! The simplest classic list scheduler: tasks carry a *static* priority —
//! their computation-only bottom level ("static level") — and at each step
//! the highest-priority **ready** task is scheduled on the processor where
//! it starts the earliest. It is the natural floor for the comparison: every
//! other algorithm here refines either its task choice (ETF, DLS, FLB) or
//! its processor choice (FCP's two-processor rule, MCP's ALAP order).

use flb_ds::IndexedMinHeap;
use flb_graph::levels::bottom_levels_comp_only;
use flb_graph::{TaskGraph, TaskId, Time};
use flb_sched::{Machine, ProcId, Schedule, ScheduleBuilder, Scheduler};
use std::cmp::Reverse;

/// The HLFET scheduling algorithm.
#[derive(Clone, Copy, Debug, Default)]
pub struct Hlfet;

impl Scheduler for Hlfet {
    fn name(&self) -> &'static str {
        "HLFET"
    }

    fn schedule(&self, graph: &TaskGraph, machine: &Machine) -> Schedule {
        let sl = bottom_levels_comp_only(graph);
        let mut builder = ScheduleBuilder::new(graph, machine);
        let mut missing: Vec<usize> = graph.tasks().map(|t| graph.in_degree(t)).collect();
        let mut ready: IndexedMinHeap<Reverse<Time>> = IndexedMinHeap::new(graph.num_tasks());
        for t in graph.entry_tasks() {
            ready.insert(t.0, Reverse(sl[t.0]));
        }

        while let Some((t, _)) = ready.pop() {
            let t = TaskId(t);
            let mut best: Option<(Time, ProcId)> = None;
            for p in machine.procs() {
                let est = builder.est(t, p);
                if best.is_none_or(|b| (est, p) < b) {
                    best = Some((est, p));
                }
            }
            let (est, proc) = best.expect("machine has processors");
            builder.place(t, proc, est);
            for &(s, _) in graph.succs(t) {
                missing[s.0] -= 1;
                if missing[s.0] == 0 {
                    ready.insert(s.0, Reverse(sl[s.0]));
                }
            }
        }
        builder.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flb_graph::paper::fig1;
    use flb_graph::{gen, TaskGraphBuilder};
    use flb_sched::validate::validate;

    #[test]
    fn hlfet_fig1_is_valid() {
        let g = fig1();
        let s = Hlfet.schedule(&g, &Machine::new(2));
        assert_eq!(validate(&g, &s), Ok(()));
    }

    #[test]
    fn hlfet_priority_order_on_one_proc() {
        let mut gb = TaskGraphBuilder::new();
        let low = gb.add_task(1);
        let high0 = gb.add_task(1);
        let high1 = gb.add_task(30);
        gb.add_edge(high0, high1, 1).unwrap();
        let g = gb.build().unwrap();
        let s = Hlfet.schedule(&g, &Machine::new(1));
        assert!(s.start(high0) < s.start(low));
        assert_eq!(s.makespan(), g.total_comp());
    }

    #[test]
    fn hlfet_valid_on_random_graphs() {
        for seed in 0..6 {
            let topo = gen::random_layered(
                &gen::RandomLayeredSpec {
                    tasks: 50,
                    layers: 5,
                    edge_prob: 0.3,
                    max_skip: 2,
                },
                seed,
            );
            let g = flb_graph::costs::CostModel::paper_default(5.0).apply(&topo, seed);
            for p in [1, 2, 4] {
                let s = Hlfet.schedule(&g, &Machine::new(p));
                assert_eq!(validate(&g, &s), Ok(()), "seed {seed}, P {p}");
            }
        }
    }
}
