//! MCP — Modified Critical Path (Wu & Gajski, IEEE TPDS 1990).
//!
//! Tasks are prioritised by their *latest possible start time* (ALAP =
//! critical path minus the longest path to an exit): smaller ALAP = higher
//! priority. Tasks are committed in that static order, each to the
//! processor on which it starts the earliest.
//!
//! Two configuration axes reproduce the paper's setup and ablation A1:
//!
//! * **tie-break** — the original MCP orders ties by the descendants'
//!   priorities; the paper benchmarks "the lower-cost version of MCP, in
//!   which if there are more tasks with the same priority, the task to be
//!   scheduled is chosen randomly", reducing the complexity to
//!   `O(V log V + (E + V) P)`. Both are provided (plus a deterministic
//!   smallest-id rule used in unit tests).
//! * **insertion** — original MCP may insert a task into an idle slot
//!   between already-scheduled tasks; the lower-cost variant appends only.
//!
//! Because ALAP strictly increases along every edge, any ALAP-ascending
//! order is topological, so every task is ready when its turn comes.

use flb_graph::levels::alap_times;
use flb_graph::{TaskGraph, TaskId, Time};
use flb_sched::{Machine, ProcId, Schedule, ScheduleBuilder, Scheduler};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// How MCP orders tasks whose ALAP times are equal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum McpTieBreak {
    /// Uniformly random order (seeded) — the variant the paper benchmarks.
    Random(u64),
    /// Smallest task id first — deterministic, used by tests.
    TaskId,
    /// Original MCP: lexicographic comparison of the sorted ALAP lists of
    /// each task's descendants (smaller list first).
    Descendants,
}

/// The MCP scheduling algorithm.
#[derive(Clone, Copy, Debug)]
pub struct Mcp {
    /// Tie-break rule among equal-ALAP tasks.
    pub tie_break: McpTieBreak,
    /// Whether tasks may be inserted into idle slots (original MCP) or only
    /// appended (the paper's lower-cost variant).
    pub insertion: bool,
}

impl Default for Mcp {
    /// The configuration the paper benchmarks: random ties, no insertion.
    fn default() -> Self {
        Mcp {
            tie_break: McpTieBreak::Random(0x5eed),
            insertion: false,
        }
    }
}

impl Mcp {
    /// Original Wu–Gajski MCP: descendant tie-break with insertion.
    #[must_use]
    pub fn original() -> Self {
        Mcp {
            tie_break: McpTieBreak::Descendants,
            insertion: true,
        }
    }

    /// The static scheduling order: ALAP ascending with this configuration's
    /// tie-break.
    #[must_use]
    pub fn task_order(&self, graph: &TaskGraph) -> Vec<TaskId> {
        let alap = alap_times(graph);
        let mut order: Vec<TaskId> = graph.tasks().collect();
        match self.tie_break {
            McpTieBreak::TaskId => {
                order.sort_by_key(|&t| (alap[t.0], t));
            }
            McpTieBreak::Random(seed) => {
                // Shuffle first so equal-ALAP runs end up in random relative
                // order after the stable sort.
                let mut rng = StdRng::seed_from_u64(seed);
                order.shuffle(&mut rng);
                order.sort_by_key(|&t| alap[t.0]);
            }
            McpTieBreak::Descendants => {
                let keys: Vec<Vec<Time>> = graph
                    .tasks()
                    .map(|t| {
                        let mut k: Vec<Time> = descendants(graph, t)
                            .into_iter()
                            .map(|d| alap[d.0])
                            .collect();
                        k.sort_unstable();
                        k
                    })
                    .collect();
                order.sort_by(|&a, &b| {
                    alap[a.0]
                        .cmp(&alap[b.0])
                        .then_with(|| keys[a.0].cmp(&keys[b.0]))
                        .then_with(|| a.cmp(&b))
                });
            }
        }
        order
    }
}

/// All strict descendants of `t`, by DFS.
fn descendants(graph: &TaskGraph, t: TaskId) -> Vec<TaskId> {
    let mut seen = vec![false; graph.num_tasks()];
    let mut stack: Vec<TaskId> = graph.succs(t).iter().map(|&(s, _)| s).collect();
    let mut out = Vec::new();
    while let Some(u) = stack.pop() {
        if seen[u.0] {
            continue;
        }
        seen[u.0] = true;
        out.push(u);
        stack.extend(graph.succs(u).iter().map(|&(s, _)| s));
    }
    out
}

impl Scheduler for Mcp {
    fn name(&self) -> &'static str {
        if self.insertion {
            "MCP-ins"
        } else {
            "MCP"
        }
    }

    fn schedule(&self, graph: &TaskGraph, machine: &Machine) -> Schedule {
        let order = self.task_order(graph);
        let mut builder = ScheduleBuilder::new(graph, machine);
        for t in order {
            // Pick the processor with the earliest start for `t`.
            let mut best: Option<(Time, ProcId)> = None;
            for p in machine.procs() {
                let est = if self.insertion {
                    builder.est_insertion(t, p)
                } else {
                    builder.est(t, p)
                };
                if best.is_none_or(|b| (est, p) < b) {
                    best = Some((est, p));
                }
            }
            let (start, proc) = best.expect("machine has processors");
            if self.insertion {
                builder.place_insert(t, proc, start);
            } else {
                builder.place(t, proc, start);
            }
        }
        builder.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flb_graph::gen;
    use flb_graph::paper::fig1;
    use flb_sched::validate::validate;

    #[test]
    fn task_order_is_topological_for_all_tiebreaks() {
        let g = gen::lu(8);
        for tb in [
            McpTieBreak::TaskId,
            McpTieBreak::Random(7),
            McpTieBreak::Descendants,
        ] {
            let mcp = Mcp {
                tie_break: tb,
                insertion: false,
            };
            let order = mcp.task_order(&g);
            let mut pos = vec![0usize; g.num_tasks()];
            for (i, &t) in order.iter().enumerate() {
                pos[t.0] = i;
            }
            for t in g.tasks() {
                for &(s, _) in g.succs(t) {
                    assert!(pos[t.0] < pos[s.0], "{tb:?}: edge {t}->{s} out of order");
                }
            }
        }
    }

    #[test]
    fn mcp_fig1_is_valid() {
        let g = fig1();
        for mcp in [Mcp::default(), Mcp::original()] {
            let s = mcp.schedule(&g, &Machine::new(2));
            assert_eq!(validate(&g, &s), Ok(()));
            // MCP prioritises the critical path; on this tiny graph it lands
            // within a small factor of FLB's 14.
            assert!(s.makespan() <= 20, "{}: {}", mcp.name(), s.makespan());
        }
    }

    #[test]
    fn insertion_never_hurts() {
        // On the same task order, insertion scheduling can only find
        // earlier (or equal) slots per task, and in practice gives equal or
        // better makespans on these graphs.
        for seed in 0..5u64 {
            let topo = gen::random_layered(
                &gen::RandomLayeredSpec {
                    tasks: 60,
                    layers: 6,
                    edge_prob: 0.25,
                    max_skip: 2,
                },
                seed,
            );
            let g = flb_graph::costs::CostModel::paper_default(1.0).apply(&topo, seed);
            let base = Mcp {
                tie_break: McpTieBreak::TaskId,
                insertion: false,
            };
            let ins = Mcp {
                tie_break: McpTieBreak::TaskId,
                insertion: true,
            };
            let m = Machine::new(4);
            let s0 = base.schedule(&g, &m);
            let s1 = ins.schedule(&g, &m);
            assert_eq!(validate(&g, &s0), Ok(()));
            assert_eq!(validate(&g, &s1), Ok(()));
        }
    }

    #[test]
    fn random_tiebreak_is_seed_deterministic() {
        let g = gen::independent(20);
        let a = Mcp {
            tie_break: McpTieBreak::Random(3),
            insertion: false,
        };
        let o1 = a.task_order(&g);
        let o2 = a.task_order(&g);
        assert_eq!(o1, o2);
        let b = Mcp {
            tie_break: McpTieBreak::Random(4),
            insertion: false,
        };
        assert_ne!(o1, b.task_order(&g), "different seeds, same order");
    }

    #[test]
    fn names_distinguish_variants() {
        assert_eq!(Mcp::default().name(), "MCP");
        assert_eq!(Mcp::original().name(), "MCP-ins");
    }
}
