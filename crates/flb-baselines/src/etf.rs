//! ETF — Earliest Task First (Hwang, Chow, Anger & Lee, SIAM J. Computing
//! 1989).
//!
//! At each iteration ETF tentatively schedules **every** ready task on
//! **every** processor, then commits the task–processor pair with the
//! minimum estimated start time. Ties are broken by a *statically* computed
//! priority — here the bottom level, larger first, then the smaller task id
//! (paper §6.2: "ETF uses statically computed task priorities"; this static
//! tie-break is the one behavioural difference from FLB, whose tie-break
//! uses dynamic message-arrival times).
//!
//! Complexity: `O(W (E + V) P)` — the cost FLB eliminates. Kept exhaustive
//! on purpose: it is both the reference implementation of the selection
//! criterion (mirrored by `flb_core::oracle`) and the cost baseline of
//! Fig. 2.

use flb_graph::levels::bottom_levels;
use flb_graph::{TaskGraph, TaskId};
use flb_sched::{Machine, ProcId, Schedule, ScheduleBuilder, Scheduler};
use std::cmp::Reverse;

/// The ETF scheduling algorithm.
#[derive(Clone, Copy, Debug, Default)]
pub struct Etf;

impl Scheduler for Etf {
    fn name(&self) -> &'static str {
        "ETF"
    }

    fn schedule(&self, graph: &TaskGraph, machine: &Machine) -> Schedule {
        let bl = bottom_levels(graph);
        let mut builder = ScheduleBuilder::new(graph, machine);
        let mut missing: Vec<usize> = graph.tasks().map(|t| graph.in_degree(t)).collect();
        let mut ready: Vec<TaskId> = graph.entry_tasks().collect();

        while !ready.is_empty() {
            // Exhaustive scan: every ready task on every processor.
            let mut best: Option<(u64, Reverse<u64>, TaskId, ProcId)> = None;
            for &t in &ready {
                for p in machine.procs() {
                    let est = builder.est(t, p);
                    // Min EST; ties -> larger bottom level, then smaller
                    // task id, then smaller processor id.
                    let cand = (est, Reverse(bl[t.0]), t, p);
                    if best.is_none_or(|b| cand < b) {
                        best = Some(cand);
                    }
                }
            }
            let (est, _, task, proc) = best.expect("ready set non-empty");

            builder.place(task, proc, est);
            ready.swap_remove(ready.iter().position(|&t| t == task).expect("in ready"));
            for &(s, _) in graph.succs(task) {
                missing[s.0] -= 1;
                if missing[s.0] == 0 {
                    ready.push(s);
                }
            }
        }
        builder.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flb_graph::paper::fig1;
    use flb_graph::{gen, TaskGraphBuilder};
    use flb_sched::validate::validate;

    #[test]
    fn etf_fig1_is_valid_and_tight() {
        let g = fig1();
        let s = Etf.schedule(&g, &Machine::new(2));
        assert_eq!(validate(&g, &s), Ok(()));
        // ETF shares FLB's selection criterion; on Fig. 1 both reach 14.
        assert_eq!(s.makespan(), 14);
    }

    #[test]
    fn etf_single_processor_has_no_idle() {
        let g = gen::lu(7);
        let s = Etf.schedule(&g, &Machine::new(1));
        assert_eq!(validate(&g, &s), Ok(()));
        assert_eq!(s.makespan(), g.total_comp());
    }

    #[test]
    fn etf_prefers_earliest_start_over_priority() {
        // Entry tasks a (huge bottom level) and b (tiny); both start at 0,
        // so the tie goes to a (priority). But if a's message pins a
        // successor, ETF still starts whatever can start earliest.
        let mut gb = TaskGraphBuilder::new();
        let a = gb.add_task(4);
        let b = gb.add_task(1);
        let c = gb.add_task(10);
        gb.add_edge(a, c, 100).unwrap();
        let g = gb.build().unwrap();
        let s = Etf.schedule(&g, &Machine::new(2));
        assert_eq!(validate(&g, &s), Ok(()));
        // a and b at 0 on different processors; c co-located with a at 4.
        assert_eq!(s.start(a), 0);
        assert_eq!(s.start(b), 0);
        assert_eq!(s.start(c), 4);
        assert_eq!(s.proc(c), s.proc(a));
    }

    #[test]
    fn etf_tie_breaks_by_static_priority() {
        // Three ready tasks all able to start at 0; ETF must take the one
        // with the largest bottom level first (the paper's §6.2: "ETF uses
        // statically computed task priorities" on ties).
        let mut gb = TaskGraphBuilder::new();
        let small = gb.add_task(1); // bl 1
        let mid0 = gb.add_task(1); // bl 1+1+4 = 6
        let mid1 = gb.add_task(4);
        let big0 = gb.add_task(1); // bl 1+1+9 = 11
        let big1 = gb.add_task(9);
        gb.add_edge(mid0, mid1, 1).unwrap();
        gb.add_edge(big0, big1, 1).unwrap();
        let g = gb.build().unwrap();
        let s = Etf.schedule(&g, &Machine::new(1));
        assert!(s.start(big0) < s.start(mid0));
        assert!(s.start(mid0) < s.start(small));
    }

    #[test]
    fn etf_on_related_machine_is_speed_oblivious() {
        // A single entry task can start at 0 on either processor; ETF picks
        // the smaller id even though p0 is 5x slower — the documented
        // speed-obliviousness of start-time selection (X9).
        let mut gb = TaskGraphBuilder::new();
        gb.add_task(10);
        let g = gb.build().unwrap();
        let m = Machine::related(vec![5, 1]);
        let s = Etf.schedule(&g, &m);
        assert_eq!(s.proc(flb_graph::TaskId(0)), ProcId(0));
        assert_eq!(s.makespan(), 50);
    }

    #[test]
    fn etf_independent_tasks_balance_across_procs() {
        let g = gen::independent(8);
        let s = Etf.schedule(&g, &Machine::new(4));
        assert_eq!(validate(&g, &s), Ok(()));
        for p in 0..4 {
            assert_eq!(s.tasks_on(ProcId(p)).len(), 2);
        }
    }
}
