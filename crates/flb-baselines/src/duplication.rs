//! Task-duplication scheduling — the third class of the paper's §1
//! taxonomy (DSH [4], BTDH [2], CPFD [1]).
//!
//! Duplication-based algorithms may run a task on *several* processors so
//! that consumers find its output locally instead of waiting for a
//! message; the paper cites them as the better-schedules/higher-cost
//! class it deliberately does not compete with. To make that trade-off
//! measurable in this repository, this module provides:
//!
//! * [`DupSchedule`] — a schedule in which every task has one or more
//!   placements, with its own independent validator ([`validate_dup`]):
//!   instances on one processor must not overlap, and every instance must
//!   receive each input from *some* instance of the predecessor (local
//!   copies at zero cost);
//! * [`Cpd`] — a DSH-style *critical-parent duplication* list scheduler:
//!   tasks are placed in descending static bottom-level order on the
//!   processor minimising their start time, and before committing, the
//!   chain of critical parents (the predecessor whose message arrives
//!   last) is greedily duplicated onto the target processor while doing so
//!   strictly lowers the start time. This is the simplest member of the
//!   class — one duplication chain, append-only timelines — documented as
//!   such; it already exhibits the class's signature behaviour (beats
//!   non-duplicating schedulers on high-CCR fork-dominated graphs, at a
//!   higher scheduling cost and extra work executed).

use flb_graph::levels::bottom_levels;
use flb_graph::{TaskGraph, TaskId, Time};
use flb_sched::{Machine, Placement, ProcId};
use std::cmp::Reverse;
use std::fmt;

/// A schedule allowing multiple placements (instances) per task.
#[derive(Clone, Debug)]
pub struct DupSchedule {
    machine: Machine,
    /// `instances[t]` — all placements of task `t`, in creation order.
    instances: Vec<Vec<Placement>>,
}

impl DupSchedule {
    /// Number of processors.
    #[must_use]
    pub fn num_procs(&self) -> usize {
        self.machine.num_procs()
    }

    /// The machine this schedule targets.
    #[must_use]
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The slowdown factor of `p` (1 on homogeneous machines).
    #[must_use]
    pub fn slowdown_of(&self, p: ProcId) -> flb_graph::Time {
        self.machine.slowdown(p)
    }

    /// All instances of `t`.
    #[must_use]
    pub fn instances(&self, t: TaskId) -> &[Placement] {
        &self.instances[t.0]
    }

    /// Total number of placed instances (≥ number of tasks; the excess is
    /// the duplication overhead).
    #[must_use]
    pub fn total_instances(&self) -> usize {
        self.instances.iter().map(Vec::len).sum()
    }

    /// Schedule length: the latest finish over all instances.
    #[must_use]
    pub fn makespan(&self) -> Time {
        self.instances
            .iter()
            .flatten()
            .map(|p| p.finish)
            .max()
            .unwrap_or(0)
    }

    /// Earliest finish time of any instance of `t` (the time its result
    /// first exists anywhere).
    #[must_use]
    pub fn earliest_finish(&self, t: TaskId) -> Time {
        self.instances[t.0]
            .iter()
            .map(|p| p.finish)
            .min()
            .expect("every task has at least one instance")
    }

    /// Extra computation executed because of duplication, as a fraction of
    /// the graph's total computation (instance counts; speeds aside).
    #[must_use]
    pub fn duplication_overhead(&self, g: &TaskGraph) -> f64 {
        let executed: Time = g
            .tasks()
            .map(|t| g.comp(t) * self.instances[t.0].len() as Time)
            .sum();
        executed as f64 / g.total_comp() as f64 - 1.0
    }
}

/// A violation found by [`validate_dup`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DupError {
    /// A task has no instance at all.
    Unplaced(TaskId),
    /// Two instances overlap on one processor.
    Overlap(ProcId),
    /// An instance starts before one of its inputs can possibly arrive.
    Precedence {
        /// The consuming task.
        task: TaskId,
        /// The predecessor whose data is late.
        pred: TaskId,
        /// Earliest possible arrival over all of `pred`'s instances.
        required: Time,
        /// The instance's start.
        actual: Time,
    },
    /// `finish != start + comp` on some instance.
    BadDuration(TaskId),
}

impl fmt::Display for DupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DupError::Unplaced(t) => write!(f, "task {t} has no instance"),
            DupError::Overlap(p) => write!(f, "instances overlap on {p}"),
            DupError::Precedence {
                task,
                pred,
                required,
                actual,
            } => write!(
                f,
                "instance of {task} starts at {actual}, before {pred}'s data can arrive at {required}"
            ),
            DupError::BadDuration(t) => write!(f, "instance of {t}: finish != start + comp"),
        }
    }
}

impl std::error::Error for DupError {}

/// Validates a duplication schedule from first principles.
pub fn validate_dup(g: &TaskGraph, s: &DupSchedule) -> Result<(), DupError> {
    // Coverage and durations.
    for t in g.tasks() {
        if s.instances(t).is_empty() {
            return Err(DupError::Unplaced(t));
        }
        for inst in s.instances(t) {
            if inst.finish != inst.start + g.comp(t) * s.slowdown_of(inst.proc) {
                return Err(DupError::BadDuration(t));
            }
        }
    }
    // Exclusivity per processor.
    for p in 0..s.num_procs() {
        let mut intervals: Vec<(Time, Time)> = g
            .tasks()
            .flat_map(|t| s.instances(t))
            .filter(|i| i.proc.0 == p)
            .map(|i| (i.start, i.finish))
            .collect();
        intervals.sort_unstable();
        if intervals.windows(2).any(|w| w[0].1 > w[1].0) {
            return Err(DupError::Overlap(ProcId(p)));
        }
    }
    // Precedence: each instance of t, for each pred, must start no earlier
    // than the cheapest arrival over the pred's instances.
    for t in g.tasks() {
        for inst in s.instances(t) {
            for &(pred, comm) in g.preds(t) {
                let required = s
                    .instances(pred)
                    .iter()
                    .map(|pi| {
                        if pi.proc == inst.proc {
                            pi.finish
                        } else {
                            pi.finish + comm
                        }
                    })
                    .min()
                    .expect("pred has instances");
                if inst.start < required {
                    return Err(DupError::Precedence {
                        task: t,
                        pred,
                        required,
                        actual: inst.start,
                    });
                }
            }
        }
    }
    Ok(())
}

/// The critical-parent duplication scheduler (DSH-style, simplified).
#[derive(Clone, Copy, Debug, Default)]
pub struct Cpd {
    /// Maximum length of the duplicated parent chain per placement
    /// (0 disables duplication, reducing Cpd to HLFET; default 8).
    pub max_chain: usize,
}

impl Cpd {
    /// Default configuration (duplication chains up to 8 parents).
    #[must_use]
    pub fn new() -> Self {
        Cpd { max_chain: 8 }
    }

    /// Schedules `g` on `machine`, returning a duplication schedule.
    #[must_use]
    pub fn schedule_dup(&self, g: &TaskGraph, machine: &Machine) -> DupSchedule {
        let v = g.num_tasks();
        let procs = machine.num_procs();
        let bl = bottom_levels(g);
        let mut sched = DupSchedule {
            machine: machine.clone(),
            instances: vec![Vec::new(); v],
        };
        let mut prt = vec![0 as Time; procs];

        // Earliest arrival of t's output on processor p given current
        // instances.
        let arrival = |sched: &DupSchedule, t: TaskId, comm: Time, p: usize| -> Time {
            sched.instances[t.0]
                .iter()
                .map(|i| {
                    if i.proc.0 == p {
                        i.finish
                    } else {
                        i.finish + comm
                    }
                })
                .min()
                .expect("instance exists")
        };
        // Data-ready time of t on p, and the critical parent (latest
        // arrival among cross-processor inputs), if any.
        let data_ready = |sched: &DupSchedule, t: TaskId, p: usize| -> (Time, Option<TaskId>) {
            let mut ready = 0;
            let mut critical: Option<(Time, TaskId)> = None;
            for &(u, c) in g.preds(t) {
                let a = arrival(sched, u, c, p);
                ready = ready.max(a);
                // Only a cross-processor arrival can be improved by
                // duplicating u onto p.
                let local = sched.instances[u.0].iter().any(|i| i.proc.0 == p);
                if !local && critical.is_none_or(|(best, _)| a > best) {
                    critical = Some((a, u));
                }
            }
            let crit_task = critical
                .filter(|&(a, _)| a == ready && ready > 0)
                .map(|(_, u)| u);
            (ready, crit_task)
        };

        // Tasks in descending static bottom-level order (topological: bl
        // strictly decreases along edges).
        let mut order: Vec<TaskId> = g.tasks().collect();
        order.sort_by_key(|&t| (Reverse(bl[t.0]), t));

        for t in order {
            // Evaluate every processor: EST without duplication, then try
            // shrinking it by duplicating the critical-parent chain.
            let mut best: Option<(Time, usize, Vec<TaskId>)> = None;
            // `p` is a processor id used well beyond indexing `prt`.
            #[allow(clippy::needless_range_loop)]
            for p in 0..procs {
                let (mut ready, mut crit) = data_ready(&sched, t, p);
                let mut clock = prt[p];
                let mut chain = Vec::new();
                // Greedy chain duplication: append copies of critical
                // parents onto p while that strictly lowers t's start.
                while let Some(u) = crit {
                    if chain.len() >= self.max_chain {
                        break;
                    }
                    let (u_ready, _) = data_ready(&sched, u, p);
                    let u_start = u_ready.max(clock);
                    let u_finish = u_start + machine.exec_time(g.comp(u), ProcId(p));
                    let old_start = ready.max(clock);
                    // Tentatively add the copy, recompute t's readiness,
                    // keep the copy only on strict improvement.
                    sched.instances[u.0].push(Placement {
                        proc: ProcId(p),
                        start: u_start,
                        finish: u_finish,
                    });
                    let (new_ready, new_crit) = data_ready(&sched, t, p);
                    let new_start = new_ready.max(u_finish);
                    if new_start < old_start {
                        chain.push(u);
                        clock = u_finish;
                        ready = new_ready;
                        crit = new_crit;
                    } else {
                        sched.instances[u.0].pop();
                        break;
                    }
                }
                let start = ready.max(clock);
                // Undo this processor's trial duplications before moving
                // on; re-applied if p wins (recorded in `chain`).
                for &u in chain.iter().rev() {
                    sched.instances[u.0].pop();
                }
                if best
                    .as_ref()
                    .is_none_or(|&(b_start, b_p, _)| (start, p) < (b_start, b_p))
                {
                    best = Some((start, p, chain));
                }
            }

            let (_, p, chain) = best.expect("machine has processors");
            // Re-apply the winning chain, then place t.
            let mut clock = prt[p];
            for &u in &chain {
                let (u_ready, _) = data_ready(&sched, u, p);
                let u_start = u_ready.max(clock);
                let u_finish = u_start + machine.exec_time(g.comp(u), ProcId(p));
                sched.instances[u.0].push(Placement {
                    proc: ProcId(p),
                    start: u_start,
                    finish: u_finish,
                });
                clock = u_finish;
            }
            let (ready, _) = data_ready(&sched, t, p);
            let start = ready.max(clock);
            let finish = start + machine.exec_time(g.comp(t), ProcId(p));
            sched.instances[t.0].push(Placement {
                proc: ProcId(p),
                start,
                finish,
            });
            prt[p] = finish;
        }
        sched
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flb_graph::costs::CostModel;
    use flb_graph::paper::fig1;
    use flb_graph::{gen, TaskGraphBuilder};

    #[test]
    fn cpd_fig1_is_valid() {
        let g = fig1();
        let s = Cpd::new().schedule_dup(&g, &Machine::new(2));
        assert_eq!(validate_dup(&g, &s), Ok(()));
        // FLB reaches 14 without duplication; CPD must do at least as well
        // as plain HLFET and never violate the comp-only CP bound.
        assert!(s.makespan() >= 10);
        assert!(s.makespan() <= 20);
    }

    #[test]
    fn duplication_wins_on_expensive_fanout() {
        // One producer, huge messages, many consumers: without duplication
        // either everything serialises on one processor or consumers wait
        // out the comm; duplicating the producer on every processor lets
        // all consumers start at comp(root) locally.
        let mut b = TaskGraphBuilder::new();
        let root = b.add_task(2);
        for _ in 0..4 {
            let c = b.add_task(10);
            b.add_edge(root, c, 100).unwrap();
        }
        let g = b.build().unwrap();
        let m = Machine::new(4);

        let dup = Cpd::new().schedule_dup(&g, &m);
        assert_eq!(validate_dup(&g, &dup), Ok(()));
        // Duplicated root on every processor: makespan 2 + 2 + 10 = 14
        // (two consumers share the root's own processor at best 2+10).
        assert!(
            dup.makespan() <= 14,
            "duplication should avoid the 100-cost messages, got {}",
            dup.makespan()
        );
        assert!(dup.total_instances() > g.num_tasks(), "root was duplicated");

        use flb_sched::Scheduler;
        let flb = flb_core::Flb::default().schedule(&g, &m).makespan();
        assert!(
            dup.makespan() < flb,
            "CPD ({}) should beat non-duplicating FLB ({flb}) here",
            dup.makespan()
        );
    }

    #[test]
    fn max_chain_zero_disables_duplication() {
        let mut b = TaskGraphBuilder::new();
        let root = b.add_task(2);
        let c = b.add_task(1);
        b.add_edge(root, c, 50).unwrap();
        let g = b.build().unwrap();
        let s = Cpd { max_chain: 0 }.schedule_dup(&g, &Machine::new(2));
        assert_eq!(validate_dup(&g, &s), Ok(()));
        assert_eq!(s.total_instances(), 2);
        assert_eq!(s.duplication_overhead(&g), 0.0);
    }

    #[test]
    fn cpd_single_processor_is_serial() {
        let g = gen::lu(6);
        let s = Cpd::new().schedule_dup(&g, &Machine::new(1));
        assert_eq!(validate_dup(&g, &s), Ok(()));
        // On one processor duplication can never help: everything is local.
        assert_eq!(s.total_instances(), g.num_tasks());
        assert_eq!(s.makespan(), g.total_comp());
    }

    #[test]
    fn cpd_valid_on_paper_families() {
        for topo in [gen::lu(7), gen::stencil(4, 4), gen::fft(3), gen::laplace(4)] {
            for &ccr in &[0.2, 5.0] {
                let g = CostModel::paper_default(ccr).apply(&topo, 13);
                for p in [2usize, 4] {
                    let s = Cpd::new().schedule_dup(&g, &Machine::new(p));
                    assert_eq!(validate_dup(&g, &s), Ok(()), "{} ccr={ccr} P={p}", g.name());
                    assert!(s.makespan() >= flb_sched::bounds::critical_path_bound(&g));
                }
            }
        }
    }

    #[test]
    fn validator_catches_violations() {
        let mut b = TaskGraphBuilder::new();
        let a = b.add_task(2);
        let c = b.add_task(3);
        b.add_edge(a, c, 5).unwrap();
        let g = b.build().unwrap();

        // Missing instance.
        let s = DupSchedule {
            machine: Machine::new(1),
            instances: vec![vec![], vec![]],
        };
        assert_eq!(validate_dup(&g, &s), Err(DupError::Unplaced(a)));

        // Precedence: c starts before a's data can arrive cross-proc.
        let s = DupSchedule {
            machine: Machine::new(2),
            instances: vec![
                vec![Placement {
                    proc: ProcId(0),
                    start: 0,
                    finish: 2,
                }],
                vec![Placement {
                    proc: ProcId(1),
                    start: 3,
                    finish: 6,
                }],
            ],
        };
        assert_eq!(
            validate_dup(&g, &s),
            Err(DupError::Precedence {
                task: c,
                pred: a,
                required: 7,
                actual: 3
            })
        );

        // A local duplicate of `a` on p1 makes the same start legal.
        let s = DupSchedule {
            machine: Machine::new(2),
            instances: vec![
                vec![
                    Placement {
                        proc: ProcId(0),
                        start: 0,
                        finish: 2,
                    },
                    Placement {
                        proc: ProcId(1),
                        start: 0,
                        finish: 2,
                    },
                ],
                vec![Placement {
                    proc: ProcId(1),
                    start: 3,
                    finish: 6,
                }],
            ],
        };
        assert_eq!(validate_dup(&g, &s), Ok(()));

        // Overlap.
        let s = DupSchedule {
            machine: Machine::new(1),
            instances: vec![
                vec![Placement {
                    proc: ProcId(0),
                    start: 0,
                    finish: 2,
                }],
                vec![Placement {
                    proc: ProcId(0),
                    start: 1,
                    finish: 4,
                }],
            ],
        };
        assert_eq!(validate_dup(&g, &s), Err(DupError::Overlap(ProcId(0))));

        // Bad duration.
        let s = DupSchedule {
            machine: Machine::new(1),
            instances: vec![
                vec![Placement {
                    proc: ProcId(0),
                    start: 0,
                    finish: 99,
                }],
                vec![Placement {
                    proc: ProcId(0),
                    start: 99,
                    finish: 102,
                }],
            ],
        };
        assert_eq!(validate_dup(&g, &s), Err(DupError::BadDuration(a)));
    }
}
