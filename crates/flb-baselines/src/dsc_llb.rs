//! DSC-LLB — the multi-step scheduler of the paper's comparison: DSC
//! clustering followed by LLB cluster mapping.

use crate::dsc;
use crate::llb::{map_clusters, LlbPriority};
use flb_graph::TaskGraph;
use flb_sched::{Machine, Schedule, Scheduler};

/// The composed DSC-LLB multi-step scheduling algorithm.
#[derive(Clone, Copy, Debug, Default)]
pub struct DscLlb {
    /// Candidate-priority rule used by the LLB step (see
    /// [`LlbPriority`] for the paper-wording ambiguity).
    pub priority: LlbPriority,
}

impl DscLlb {
    /// DSC-LLB with the default (greatest-bottom-level) LLB priority.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// DSC-LLB with an explicit LLB priority rule.
    #[must_use]
    pub fn with_priority(priority: LlbPriority) -> Self {
        DscLlb { priority }
    }
}

impl Scheduler for DscLlb {
    fn name(&self) -> &'static str {
        "DSC-LLB"
    }

    fn schedule(&self, graph: &TaskGraph, machine: &Machine) -> Schedule {
        let clustering = dsc::cluster(graph);
        map_clusters(graph, machine, &clustering, self.priority)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flb_graph::paper::fig1;
    use flb_sched::validate::validate;

    #[test]
    fn composed_scheduler_is_valid() {
        let g = fig1();
        let s = DscLlb::new().schedule(&g, &Machine::new(2));
        assert_eq!(validate(&g, &s), Ok(()));
        assert_eq!(DscLlb::new().name(), "DSC-LLB");
    }

    #[test]
    fn scales_with_processors() {
        let g = flb_graph::gen::stencil(6, 6);
        let s1 = DscLlb::new().schedule(&g, &Machine::new(1));
        let s4 = DscLlb::new().schedule(&g, &Machine::new(4));
        assert_eq!(validate(&g, &s4), Ok(()));
        assert!(s4.makespan() <= s1.makespan());
    }
}
