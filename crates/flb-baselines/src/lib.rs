//! Baseline scheduling algorithms from the FLB paper's evaluation (§3, §6).
//!
//! Everything FLB is compared against, re-implemented from the published
//! descriptions:
//!
//! * [`Etf`] — Earliest Task First (Hwang, Chow, Anger, Lee 1989): the same
//!   selection criterion as FLB, realised with the exhaustive
//!   `O(W (E + V) P)` ready-tasks × processors scan;
//! * [`Mcp`] — Modified Critical Path (Wu & Gajski 1990): static ALAP
//!   priorities, earliest-start processor; the paper benchmarks the
//!   lower-cost random-tie-break variant without idle-slot insertion, and
//!   the original insertion variant is kept as an ablation (A1);
//! * [`Fcp`] — Fast Critical Path (Rădulescu & van Gemund, ICS 1999):
//!   static-priority task selection with the two-processor rule (enabling
//!   processor vs earliest-idle processor);
//! * [`dsc`] — Dominant Sequence Clustering (Yang & Gerasoulis 1994), the
//!   clustering step of the multi-step method;
//! * [`llb`] — List-based Load Balancing (Rădulescu, van Gemund, Lin 1999),
//!   the cluster-mapping step;
//! * [`DscLlb`] — the composed multi-step scheduler the paper compares
//!   against.
//!
//! Beyond the paper's own comparison set, two more classics it cites are
//! provided for the extended experiments:
//!
//! * [`Dls`] — Dynamic Level Scheduling (Sih & Lee 1993, the paper's [10]);
//! * [`Heft`] — Heterogeneous Earliest Finish Time (Topcuoglu et al. 2002),
//!   the reference algorithm of the related-machines extension (X9);
//! * [`Hlfet`] — Highest Level First with Estimated Times, the canonical
//!   static-priority list scheduler;
//! * [`duplication`] — the task-duplication class (§1's DSH/BTDH/CPFD),
//!   with its own multi-instance schedule model, validator and a
//!   critical-parent duplication scheduler.
//!
//! All algorithms implement [`flb_sched::Scheduler`] and are
//! interchangeable:
//!
//! ```
//! use flb_baselines::{Etf, Mcp};
//! use flb_core::Flb;
//! use flb_graph::paper::fig1;
//! use flb_sched::{Machine, Scheduler};
//!
//! let g = fig1();
//! let m = Machine::new(2);
//! let algorithms: Vec<Box<dyn Scheduler>> =
//!     vec![Box::new(Flb::default()), Box::new(Etf), Box::new(Mcp::default())];
//! for a in &algorithms {
//!     let s = a.schedule(&g, &m);
//!     assert!(flb_sched::validate::validate(&g, &s).is_ok(), "{}", a.name());
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dls;
mod dsc_llb;
mod etf;
mod fcp;
mod heft;
mod hlfet;
mod mcp;

pub mod dsc;
pub mod duplication;
pub mod llb;

pub use dls::Dls;
pub use dsc_llb::DscLlb;
pub use etf::Etf;
pub use fcp::Fcp;
pub use heft::Heft;
pub use hlfet::Hlfet;
pub use llb::LlbPriority;
pub use mcp::{Mcp, McpTieBreak};
