//! DLS — Dynamic Level Scheduling (Sih & Lee, IEEE TPDS 1993).
//!
//! Referenced by the FLB paper (§1, [10]) among the one-step,
//! non-duplicating algorithms for bounded processor counts. At each
//! iteration DLS evaluates the **dynamic level**
//!
//! ```text
//! DL(t, p) = SL(t) − EST(t, p) + Δ(t, p)
//! ```
//!
//! for every ready task `t` and processor `p`, where `SL(t)` is the *static
//! level* — the longest computation-only path from `t` to an exit task —
//! and commits the pair with the **largest** dynamic level. Early in the
//! run the `SL` term dominates (critical tasks first); as the schedule
//! fills, the `EST` term dominates (idle processors get work), blending
//! both concerns.
//!
//! `Δ(t, p) = E*(t) − E(t, p)` is Sih & Lee's heterogeneity adjustment:
//! the task's median execution time across processors minus its execution
//! time on `p`, rewarding placements on faster processors. On the paper's
//! homogeneous machines `Δ ≡ 0` and DLS reduces to its classic form; DLS
//! is the one algorithm in this collection that is natively speed-aware,
//! which the `hetero` harness (experiment X9) exploits.
//!
//! Complexity is `O(W (E + V) P)` like ETF — DLS is part of the "higher
//! cost" class FLB undercuts; it is included here for the extended
//! comparison in the `extended` harness and benches.

use flb_graph::levels::bottom_levels_comp_only;
use flb_graph::{TaskGraph, TaskId, Time};
use flb_sched::{Machine, ProcId, Schedule, ScheduleBuilder, Scheduler};
use std::cmp::Reverse;

/// The DLS scheduling algorithm.
#[derive(Clone, Copy, Debug, Default)]
pub struct Dls;

impl Scheduler for Dls {
    fn name(&self) -> &'static str {
        "DLS"
    }

    fn schedule(&self, graph: &TaskGraph, machine: &Machine) -> Schedule {
        // Sih & Lee's static level excludes communication costs.
        let sl = bottom_levels_comp_only(graph);
        let mut builder = ScheduleBuilder::new(graph, machine);
        let mut missing: Vec<usize> = graph.tasks().map(|t| graph.in_degree(t)).collect();
        let mut ready: Vec<TaskId> = graph.entry_tasks().collect();

        // Median slowdown for the heterogeneity adjustment Δ(t, p) =
        // comp(t) · (median_slowdown − slowdown(p)); zero when homogeneous.
        let median_slow = {
            let mut slows: Vec<Time> = machine.procs().map(|p| machine.slowdown(p)).collect();
            slows.sort_unstable();
            slows[slows.len() / 2]
        };

        while !ready.is_empty() {
            // Maximise DL(t, p) = SL(t) - EST(t, p) + Δ(t, p). Levels and
            // starts are unsigned; compare as i128 to avoid underflow.
            let mut best: Option<(i128, Reverse<Time>, TaskId, ProcId)> = None;
            for &t in &ready {
                for p in machine.procs() {
                    let est = builder.est(t, p);
                    let delta =
                        graph.comp(t) as i128 * (median_slow as i128 - machine.slowdown(p) as i128);
                    let dl = sl[t.0] as i128 - est as i128 + delta;
                    // Ties: earlier start, then smaller task id, proc id.
                    let cand = (dl, Reverse(est), t, p);
                    let better = match &best {
                        None => true,
                        // Larger dl wins; then the Reverse(est) makes the
                        // smaller est win; then smaller ids.
                        Some(b) => {
                            (cand.0, cand.1, Reverse(cand.2), Reverse(cand.3))
                                > (b.0, b.1, Reverse(b.2), Reverse(b.3))
                        }
                    };
                    if better {
                        best = Some(cand);
                    }
                }
            }
            let (_, Reverse(est), task, proc) = best.expect("ready set non-empty");

            builder.place(task, proc, est);
            ready.swap_remove(ready.iter().position(|&t| t == task).expect("in ready"));
            for &(s, _) in graph.succs(task) {
                missing[s.0] -= 1;
                if missing[s.0] == 0 {
                    ready.push(s);
                }
            }
        }
        builder.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flb_graph::paper::fig1;
    use flb_graph::{gen, TaskGraphBuilder};
    use flb_sched::validate::validate;

    #[test]
    fn dls_fig1_is_valid() {
        let g = fig1();
        let s = Dls.schedule(&g, &Machine::new(2));
        assert_eq!(validate(&g, &s), Ok(()));
        assert!(s.makespan() <= 20, "got {}", s.makespan());
    }

    #[test]
    fn dls_prefers_high_static_level_first() {
        // Two entry tasks, both can start at 0: the one heading the longer
        // computation chain has the larger SL and must be placed first.
        let mut gb = TaskGraphBuilder::new();
        let small = gb.add_task(1);
        let big0 = gb.add_task(1);
        let big1 = gb.add_task(50);
        gb.add_edge(big0, big1, 1).unwrap();
        let g = gb.build().unwrap();
        let s = Dls.schedule(&g, &Machine::new(1));
        assert!(s.start(big0) < s.start(small));
    }

    #[test]
    fn dls_single_processor_never_idles() {
        let g = gen::lu(7);
        let s = Dls.schedule(&g, &Machine::new(1));
        assert_eq!(s.makespan(), g.total_comp());
    }

    #[test]
    fn dls_balances_independent_tasks() {
        let g = gen::independent(9);
        let s = Dls.schedule(&g, &Machine::new(3));
        assert_eq!(validate(&g, &s), Ok(()));
        for p in 0..3 {
            assert_eq!(s.tasks_on(ProcId(p)).len(), 3);
        }
    }
}
