//! FCP — Fast Critical Path (Rădulescu & van Gemund, ICS 1999).
//!
//! FLB's immediate predecessor: FCP keeps *task* selection static (the
//! ready task with the largest bottom level — critical-path first) and
//! proved that *processor* selection needs only **two** candidates: the
//! task's enabling processor and the processor becoming idle the earliest.
//! Complexity `O(V log P + E)` modulo the ready-queue log factor.
//!
//! FLB strengthens the task selection to the dynamic earliest-start
//! criterion at the same asymptotic cost; FCP is benchmarked alongside FLB
//! in Figs. 2 and 4 of the paper.

use flb_ds::IndexedMinHeap;
use flb_graph::levels::bottom_levels;
use flb_graph::{TaskGraph, TaskId, Time};
use flb_sched::{Machine, ProcId, Schedule, ScheduleBuilder, Scheduler};
use std::cmp::Reverse;

/// The FCP scheduling algorithm.
#[derive(Clone, Copy, Debug, Default)]
pub struct Fcp;

impl Scheduler for Fcp {
    fn name(&self) -> &'static str {
        "FCP"
    }

    fn schedule(&self, graph: &TaskGraph, machine: &Machine) -> Schedule {
        let bl = bottom_levels(graph);
        let mut builder = ScheduleBuilder::new(graph, machine);
        let mut missing: Vec<usize> = graph.tasks().map(|t| graph.in_degree(t)).collect();

        // Ready queue: largest bottom level first (critical path first).
        let mut ready: IndexedMinHeap<Reverse<Time>> = IndexedMinHeap::new(graph.num_tasks());
        for t in graph.entry_tasks() {
            ready.insert(t.0, Reverse(bl[t.0]));
        }
        // Processors by PRT (earliest idle first).
        let mut procs: IndexedMinHeap<Time> = IndexedMinHeap::new(machine.num_procs());
        for p in machine.procs() {
            procs.insert(p.0, 0);
        }

        while let Some((t, _)) = ready.pop() {
            let t = TaskId(t);
            // Two-processor rule: enabling processor vs earliest idle.
            let idle = ProcId(procs.peek().expect("non-empty machine").0);
            let (proc, start) = match builder.ep(t) {
                Some(ep) => {
                    let est_ep = builder.est(t, ep);
                    let est_idle = builder.est(t, idle);
                    // Ties favour the enabling processor (no message cost).
                    if est_ep <= est_idle {
                        (ep, est_ep)
                    } else {
                        (idle, est_idle)
                    }
                }
                None => (idle, builder.est(t, idle)),
            };
            builder.place(t, proc, start);
            procs.update(proc.0, builder.prt(proc));
            for &(s, _) in graph.succs(t) {
                missing[s.0] -= 1;
                if missing[s.0] == 0 {
                    ready.insert(s.0, Reverse(bl[s.0]));
                }
            }
        }
        builder.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flb_graph::paper::fig1;
    use flb_graph::{gen, TaskGraphBuilder};
    use flb_sched::validate::validate;

    #[test]
    fn fcp_fig1_is_valid() {
        let g = fig1();
        let s = Fcp.schedule(&g, &Machine::new(2));
        assert_eq!(validate(&g, &s), Ok(()));
        assert!(s.makespan() <= 20, "got {}", s.makespan());
    }

    #[test]
    fn fcp_schedules_critical_path_first() {
        // Two entry tasks; the one on the longer path must go first.
        let mut gb = TaskGraphBuilder::new();
        let a = gb.add_task(1); // bl = 1
        let b0 = gb.add_task(1); // bl = 1 + 2 + 9 = 12
        let b1 = gb.add_task(9);
        gb.add_edge(b0, b1, 2).unwrap();
        let g = gb.build().unwrap();
        let s = Fcp.schedule(&g, &Machine::new(1));
        assert!(s.start(b0) < s.start(a));
        assert_eq!(validate(&g, &s), Ok(()));
    }

    #[test]
    fn fcp_uses_enabling_processor_when_beneficial() {
        // chain a -> c with huge comm: c must co-locate with a.
        let mut gb = TaskGraphBuilder::new();
        let a = gb.add_task(2);
        let c = gb.add_task(2);
        gb.add_edge(a, c, 1000).unwrap();
        let g = gb.build().unwrap();
        let s = Fcp.schedule(&g, &Machine::new(4));
        assert_eq!(s.proc(c), s.proc(a));
        assert_eq!(s.start(c), 2);
    }

    #[test]
    fn fcp_spreads_independent_tasks() {
        let g = gen::independent(12);
        let s = Fcp.schedule(&g, &Machine::new(4));
        assert_eq!(validate(&g, &s), Ok(()));
        for p in 0..4 {
            assert_eq!(s.tasks_on(ProcId(p)).len(), 3);
        }
    }

    #[test]
    fn fcp_single_processor_is_serial() {
        let g = gen::laplace(5);
        let s = Fcp.schedule(&g, &Machine::new(1));
        assert_eq!(s.makespan(), g.total_comp());
    }
}
