//! Cross-algorithm properties: every scheduler in the paper's comparison
//! produces valid schedules with sane bounds, on every graph family.

use flb_baselines::{Dls, DscLlb, Etf, Fcp, Heft, Hlfet, LlbPriority, Mcp, McpTieBreak};
use flb_core::Flb;
use flb_graph::costs::CostModel;
use flb_graph::levels::critical_path_comp_only;
use flb_graph::{gen, TaskGraph};
use flb_sched::validate::validate;
use flb_sched::{Machine, Scheduler};
use proptest::prelude::*;

fn schedulers() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(Flb::default()),
        Box::new(Etf),
        Box::new(Mcp::default()),
        Box::new(Mcp::original()),
        Box::new(Mcp {
            tie_break: McpTieBreak::TaskId,
            insertion: false,
        }),
        Box::new(Fcp),
        Box::new(Dls),
        Box::new(Heft),
        Box::new(Hlfet),
        Box::new(DscLlb::default()),
        Box::new(DscLlb::with_priority(LlbPriority::Least)),
    ]
}

fn arb_weighted_graph() -> impl Strategy<Value = TaskGraph> {
    let topo = prop_oneof![
        (2usize..12).prop_map(gen::lu),
        (1usize..6).prop_map(gen::laplace),
        (1usize..6, 1usize..5).prop_map(|(p, s)| gen::stencil(p, s)),
        (1u32..4).prop_map(gen::fft),
        (1usize..6, 1usize..4).prop_map(|(w, s)| gen::fork_join(w, s)),
        (1usize..9).prop_map(gen::chain),
        (1usize..9).prop_map(gen::independent),
        (8usize..36, 2usize..5, any::<u64>()).prop_map(|(v, l, seed)| gen::random_layered(
            &gen::RandomLayeredSpec {
                tasks: v,
                layers: l,
                edge_prob: 0.35,
                max_skip: 2
            },
            seed
        )),
    ];
    (topo, prop_oneof![Just(0.2), Just(5.0)], any::<u64>())
        .prop_map(|(t, ccr, seed)| CostModel::paper_default(ccr).apply(&t, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_scheduler_is_valid_and_bounded(
        g in arb_weighted_graph(),
        procs in 1usize..7,
    ) {
        let m = Machine::new(procs);
        let serial = g.total_comp();
        // Combined bound: computation critical path and load balance.
        let lower = critical_path_comp_only(&g)
            .max(flb_sched::bounds::makespan_lower_bound(&g, procs));
        for s in schedulers() {
            let sched = s.schedule(&g, &m);
            prop_assert_eq!(
                validate(&g, &sched),
                Ok(()),
                "{} produced an invalid schedule",
                s.name()
            );
            let span = sched.makespan();
            prop_assert!(span >= lower, "{} beat the critical-path bound", s.name());
            prop_assert!(
                span <= serial + g.total_comm(),
                "{} exceeded full serialisation: {span}",
                s.name()
            );
        }
    }

    /// On a single processor, list schedulers produce zero idle time.
    #[test]
    fn single_processor_no_idle(g in arb_weighted_graph()) {
        let m = Machine::new(1);
        for s in schedulers() {
            let sched = s.schedule(&g, &m);
            prop_assert_eq!(
                sched.makespan(),
                g.total_comp(),
                "{} idles on one processor",
                s.name()
            );
        }
    }

    /// Every scheduler stays correct on related (heterogeneous) machines:
    /// durations scale with the processor's slowdown and the machine-aware
    /// lower bound holds. (The paper's machines are homogeneous; this is
    /// the extension setting of experiment X9.)
    #[test]
    fn every_scheduler_valid_on_related_machines(
        g in arb_weighted_graph(),
        shape in prop_oneof![
            Just(vec![1u64, 2]),
            Just(vec![1, 1, 4]),
            Just(vec![2, 3, 5]),
            Just(vec![1, 1, 2, 2, 4, 4]),
        ],
    ) {
        let m = Machine::new(1); // exercise P=1 alongside the related one
        let hm = Machine::related(shape);
        for s in schedulers() {
            for machine in [&m, &hm] {
                let sched = s.schedule(&g, machine);
                prop_assert_eq!(
                    validate(&g, &sched),
                    Ok(()),
                    "{} on {:?}",
                    s.name(),
                    machine
                );
                prop_assert!(
                    sched.makespan()
                        >= flb_sched::bounds::makespan_lower_bound_on(&g, machine),
                    "{} beat the machine-aware bound",
                    s.name()
                );
            }
        }
    }

    /// Scheduling pre-pass transforms compose with every scheduler: the
    /// transformed graphs remain schedulable, and the makespan lower bound
    /// still holds.
    #[test]
    fn transforms_compose_with_scheduling(
        g in arb_weighted_graph(),
        procs in 1usize..6,
    ) {
        use flb_graph::transform::{coarsen_chains, transitive_reduction};
        let m = Machine::new(procs);
        for variant in [transitive_reduction(&g), coarsen_chains(&g).graph] {
            for s in schedulers() {
                let sched = s.schedule(&variant, &m);
                prop_assert_eq!(
                    validate(&variant, &sched),
                    Ok(()),
                    "{} on transformed {}",
                    s.name(),
                    variant.name()
                );
                prop_assert!(
                    sched.makespan() >= flb_sched::bounds::makespan_lower_bound(&variant, procs)
                );
            }
        }
    }

    /// FLB and ETF share the selection criterion: their makespans agree
    /// whenever no tie-break divergence occurs; in general they stay within
    /// a modest band of each other (§6.2 reports up to ~12% differences on
    /// real workloads; random micro-graphs can diverge further, so this only
    /// asserts both lie within the generic bounds — the quantitative band is
    /// measured by the fig4 harness).
    #[test]
    fn flb_and_etf_both_feasible(g in arb_weighted_graph(), procs in 1usize..7) {
        let m = Machine::new(procs);
        let f = Flb::default().schedule(&g, &m);
        let e = Etf.schedule(&g, &m);
        prop_assert_eq!(validate(&g, &f), Ok(()));
        prop_assert_eq!(validate(&g, &e), Ok(()));
    }
}
