//! Property tests for schedule/graph (de)serialisation: every codec in
//! `flb_sched::io` must round-trip arbitrary valid values to identity, and
//! the binary wire codec must never panic on corrupted bytes.

use flb_graph::{TaskGraph, TaskGraphBuilder, TaskId};
use flb_sched::io::{self, wire, ScheduleData};
use flb_sched::{Machine, Placement, ProcId, Schedule};
use proptest::prelude::*;

/// An arbitrary machine: 1–6 processors with slowdowns in 1..=8.
fn machine_strategy() -> impl Strategy<Value = Machine> {
    proptest::collection::vec(1u64..=8, 1..=6).prop_map(Machine::related)
}

/// An arbitrary (not necessarily precedence-feasible) schedule: the codecs
/// only promise to preserve placements, not to validate them against a
/// graph, so any `start <= finish` placement on a declared processor is a
/// legal document.
fn schedule_strategy() -> impl Strategy<Value = Schedule> {
    (machine_strategy(), 0usize..40).prop_flat_map(|(machine, tasks)| {
        let procs = machine.num_procs();
        proptest::collection::vec((0..procs, 0u64..10_000, 0u64..500), tasks).prop_map(
            move |triples| {
                let placements = triples
                    .into_iter()
                    .map(|(proc, start, dur)| Placement {
                        proc: ProcId(proc),
                        start,
                        finish: start + dur,
                    })
                    .collect();
                Schedule::from_raw_on(machine.clone(), placements)
            },
        )
    })
}

/// An arbitrary DAG: edges only ever point from a lower to a higher task
/// id, so any generated edge set is acyclic by construction.
fn graph_strategy() -> impl Strategy<Value = TaskGraph> {
    (2usize..30).prop_flat_map(|n| {
        let comps = proptest::collection::vec(0u64..1_000, n);
        let edges = proptest::collection::vec((0usize..n, 0usize..n, 0u64..200), 0..60);
        (comps, edges).prop_map(|(comps, edges)| {
            let mut b = TaskGraphBuilder::new();
            let ids: Vec<TaskId> = comps.into_iter().map(|c| b.add_task(c)).collect();
            let mut seen = std::collections::HashSet::new();
            for (a, z, comm) in edges {
                let (a, z) = (a.min(z), a.max(z));
                if a != z && seen.insert((a, z)) {
                    b.add_edge(ids[a], ids[z], comm).expect("fresh edge");
                }
            }
            b.build().expect("low-to-high edges are acyclic")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn text_roundtrip_is_identity(s in schedule_strategy()) {
        let parsed = io::parse_text(&io::to_text(&s)).expect("parse own output");
        prop_assert_eq!(parsed, s);
    }

    #[test]
    fn schedule_data_roundtrip_is_identity(s in schedule_strategy()) {
        let back = Schedule::from(ScheduleData::from(&s));
        prop_assert_eq!(back, s);
    }

    #[test]
    fn wire_schedule_roundtrip_is_identity(s in schedule_strategy()) {
        let bytes = wire::encode_schedule(&s);
        let back = wire::decode_schedule(&bytes).expect("decode own output");
        prop_assert_eq!(back, s);
    }

    #[test]
    fn wire_graph_roundtrip_is_identity(g in graph_strategy()) {
        let bytes = wire::encode_graph(&g);
        let back = wire::decode_graph(&bytes).expect("decode own output");
        prop_assert_eq!(back.name(), g.name());
        prop_assert_eq!(back.num_tasks(), g.num_tasks());
        prop_assert_eq!(back.num_edges(), g.num_edges());
        for t in g.tasks() {
            prop_assert_eq!(back.comp(t), g.comp(t));
            prop_assert_eq!(back.succs(t), g.succs(t));
        }
    }

    #[test]
    fn wire_decode_never_panics_on_corruption(
        s in schedule_strategy(),
        cut in 0usize..4096,
        flip in 0usize..4096,
        xor in 1u8..=255,
    ) {
        // Truncations error cleanly...
        let bytes = wire::encode_schedule(&s);
        let cut = cut % bytes.len().max(1);
        prop_assert!(wire::decode_schedule(&bytes[..cut]).is_err());
        // ...and bit flips either error or decode to *some* schedule; the
        // decoder must never panic or loop.
        let mut mutated = bytes.clone();
        let at = flip % mutated.len();
        mutated[at] ^= xor;
        let _ = wire::decode_schedule(&mutated);
    }

    #[test]
    fn wire_graph_decode_never_panics_on_corruption(
        g in graph_strategy(),
        cut in 0usize..4096,
        flip in 0usize..4096,
        xor in 1u8..=255,
    ) {
        let bytes = wire::encode_graph(&g);
        let cut = cut % bytes.len().max(1);
        prop_assert!(wire::decode_graph(&bytes[..cut]).is_err());
        let mut mutated = bytes.clone();
        let at = flip % mutated.len();
        mutated[at] ^= xor;
        let _ = wire::decode_graph(&mutated);
    }
}
