//! Related-processors (heterogeneous) machine model: builder, validator and
//! metrics behaviour. The paper's machines are homogeneous; this extension
//! follows the authors' own follow-up direction and DLS's native setting.

use flb_graph::{TaskGraphBuilder, TaskId};
use flb_sched::validate::{validate, ScheduleError};
use flb_sched::{io, Machine, Placement, ProcId, Schedule, ScheduleBuilder};

fn two_chain() -> flb_graph::TaskGraph {
    let mut b = TaskGraphBuilder::new();
    let a = b.add_task(4);
    let c = b.add_task(6);
    b.add_edge(a, c, 5).unwrap();
    b.build().unwrap()
}

#[test]
fn builder_applies_slowdowns() {
    let g = two_chain();
    let m = Machine::related(vec![1, 3]);
    let mut b = ScheduleBuilder::new(&g, &m);
    b.place(TaskId(0), ProcId(1), 0);
    // comp 4 on a 3x slower processor runs 12 time units.
    assert_eq!(b.ft(TaskId(0)), 12);
    assert_eq!(b.prt(ProcId(1)), 12);
    // Successor on the fast processor: message arrives at 12 + 5 = 17,
    // executes in 6.
    let est = b.est(TaskId(1), ProcId(0));
    assert_eq!(est, 17);
    b.place(TaskId(1), ProcId(0), est);
    let s = b.build();
    assert_eq!(s.makespan(), 23);
    assert_eq!(validate(&g, &s), Ok(()));
}

#[test]
fn validator_checks_hetero_durations() {
    let g = two_chain();
    let m = Machine::related(vec![1, 3]);
    // Correct on p1: 4 * 3 = 12.
    let ok = Schedule::from_raw_on(
        m.clone(),
        vec![
            Placement {
                proc: ProcId(1),
                start: 0,
                finish: 12,
            },
            Placement {
                proc: ProcId(0),
                start: 17,
                finish: 23,
            },
        ],
    );
    assert_eq!(validate(&g, &ok), Ok(()));
    // Homogeneous duration on a slow processor must be rejected.
    let bad = Schedule::from_raw_on(
        m,
        vec![
            Placement {
                proc: ProcId(1),
                start: 0,
                finish: 4,
            },
            Placement {
                proc: ProcId(0),
                start: 9,
                finish: 15,
            },
        ],
    );
    assert_eq!(
        validate(&g, &bad),
        Err(ScheduleError::BadDuration(TaskId(0)))
    );
}

#[test]
fn speedup_uses_fastest_class() {
    // Two independent comp-6 tasks; machine [1, 2]. Best sequential = 12
    // (fast processor). Parallel: fast does one in 6, slow in 12 ->
    // makespan 12, speedup 1.0 (the slow processor adds nothing here).
    let mut b = TaskGraphBuilder::new();
    b.add_task(6);
    b.add_task(6);
    let g = b.build().unwrap();
    let m = Machine::related(vec![1, 2]);
    let mut sb = ScheduleBuilder::new(&g, &m);
    sb.place(TaskId(0), ProcId(0), 0);
    sb.place(TaskId(1), ProcId(1), 0);
    let s = sb.build();
    assert_eq!(s.makespan(), 12);
    assert_eq!(flb_sched::metrics::speedup(&g, &s), 1.0);
    // Idle accounting: p0 idles 6 of the 12 units.
    assert_eq!(flb_sched::metrics::total_idle(&g, &s), 6);
    assert_eq!(flb_sched::metrics::utilisation(&g, &s), vec![0.5, 1.0]);
}

#[test]
fn est_insertion_respects_speed() {
    // A gap of 8 time units fits comp 4 on the fast proc but not on a
    // 3x-slower one.
    let mut gb = TaskGraphBuilder::new();
    gb.add_task(1); // t0 creates the gap edge
    gb.add_task(1);
    gb.add_task(4); // t2: needs 4 (fast) or 12 (slow)
    let g = gb.build().unwrap();
    let m = Machine::related(vec![1, 3]);
    let mut b = ScheduleBuilder::new(&g, &m);
    b.place_insert(TaskId(0), ProcId(0), 0); // busy [0, 1)
    b.place_insert(TaskId(1), ProcId(0), 9); // busy [9, 10): gap [1, 9)
    assert_eq!(b.est_insertion(TaskId(2), ProcId(0)), 1); // 4 fits in 8
                                                          // On the slow processor the same task would need 12 units; the only
                                                          // slot is the end of its (empty) timeline: 0.
    assert_eq!(b.est_insertion(TaskId(2), ProcId(1)), 0);
}

#[test]
fn text_io_roundtrips_speeds() {
    let g = two_chain();
    let m = Machine::related(vec![1, 3]);
    let mut b = ScheduleBuilder::new(&g, &m);
    b.place(TaskId(0), ProcId(1), 0);
    b.place(TaskId(1), ProcId(0), 17);
    let s = b.build();
    let text = io::to_text(&s);
    assert!(text.contains("speeds 1 3"));
    let back = io::parse_text(&text).unwrap();
    assert_eq!(back, s);
    assert_eq!(validate(&g, &back), Ok(()));
    // serde mirror too.
    let data = io::ScheduleData::from(&s);
    assert_eq!(data.slowdowns, vec![1, 3]);
    let back2: Schedule = data.into();
    assert_eq!(back2, s);
}

#[test]
fn speeds_header_mismatch_rejected() {
    let r = io::parse_text("procs 2\nspeeds 1 2 3\ns 0 0 0 1\ns 1 1 1 2\n");
    assert!(r.is_err());
    let r = io::parse_text("procs 2\nspeeds 1 zero\ns 0 0 0 1\n");
    assert!(r.is_err());
}

#[test]
fn homogeneous_behaviour_is_unchanged() {
    // Machine::new must behave exactly as before the extension.
    let g = two_chain();
    let m = Machine::new(2);
    assert!(m.is_homogeneous());
    let mut b = ScheduleBuilder::new(&g, &m);
    b.place(TaskId(0), ProcId(0), 0);
    assert_eq!(b.ft(TaskId(0)), 4);
    b.place(TaskId(1), ProcId(0), 4);
    let s = b.build();
    assert_eq!(s.makespan(), 10);
    assert!(!io::to_text(&s).contains("speeds"));
}
