//! The distributed-memory machine model.

use flb_graph::{Cost, Time};
use std::fmt;

/// Identifier of a processor: a dense index in `0..machine.num_procs()`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ProcId(pub usize);

impl ProcId {
    /// The dense index of this processor.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A set of `P` processors in clique topology with contention-free
/// communication (paper §2).
///
/// The paper's machine is **homogeneous** ([`Machine::new`]): a task costs
/// the same everywhere. As the classic extension (and the setting DLS was
/// designed for), [`Machine::related`] models *related* (uniformly
/// heterogeneous) processors: processor `p` has an integer slowdown
/// `slow[p] ≥ 1` and executes a task of computation cost `c` in
/// `c · slow[p]` time units. Communication is unaffected by processor
/// speeds in either model — the clique plus no-contention assumption means
/// an edge's delay depends only on whether its endpoints share a processor
/// (0 if so, `comm` otherwise).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Machine {
    /// Integer slowdown factor per processor (1 = fastest class).
    slow: Vec<Time>,
}

impl Machine {
    /// A homogeneous machine with `procs` processors (the paper's model).
    ///
    /// # Panics
    ///
    /// Panics if `procs == 0`.
    #[must_use]
    pub fn new(procs: usize) -> Self {
        assert!(procs > 0, "a machine needs at least one processor");
        Machine {
            slow: vec![1; procs],
        }
    }

    /// A related-processors machine: `slowdowns[p]` is how many time units
    /// one unit of computation takes on processor `p` (all ≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `slowdowns` is empty or contains a zero.
    #[must_use]
    pub fn related(slowdowns: Vec<Time>) -> Self {
        assert!(
            !slowdowns.is_empty(),
            "a machine needs at least one processor"
        );
        assert!(
            slowdowns.iter().all(|&s| s >= 1),
            "slowdown factors must be at least 1"
        );
        Machine { slow: slowdowns }
    }

    /// Number of processors `P`.
    #[must_use]
    pub fn num_procs(&self) -> usize {
        self.slow.len()
    }

    /// Iterator over all processor ids.
    pub fn procs(&self) -> impl Iterator<Item = ProcId> {
        (0..self.slow.len()).map(ProcId)
    }

    /// Execution time of a task with computation cost `comp` on `p`.
    #[must_use]
    pub fn exec_time(&self, comp: Cost, p: ProcId) -> Time {
        comp * self.slow[p.0]
    }

    /// The slowdown factor of `p` (1 for homogeneous machines).
    #[must_use]
    pub fn slowdown(&self, p: ProcId) -> Time {
        self.slow[p.0]
    }

    /// Whether every processor runs at the same speed (the paper's model).
    #[must_use]
    pub fn is_homogeneous(&self) -> bool {
        self.slow.windows(2).all(|w| w[0] == w[1])
    }

    /// The smallest slowdown — the fastest processor class. The best
    /// sequential time of a program is `total_comp · min_slowdown`.
    #[must_use]
    pub fn min_slowdown(&self) -> Time {
        *self.slow.iter().min().expect("non-empty machine")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_basics() {
        let m = Machine::new(4);
        assert_eq!(m.num_procs(), 4);
        assert_eq!(m.procs().collect::<Vec<_>>().len(), 4);
        assert_eq!(m.procs().next(), Some(ProcId(0)));
        assert_eq!(format!("{}", ProcId(3)), "p3");
        assert!(m.is_homogeneous());
        assert_eq!(m.exec_time(7, ProcId(2)), 7);
        assert_eq!(m.min_slowdown(), 1);
    }

    #[test]
    fn related_machine() {
        let m = Machine::related(vec![1, 2, 4]);
        assert_eq!(m.num_procs(), 3);
        assert!(!m.is_homogeneous());
        assert_eq!(m.exec_time(5, ProcId(0)), 5);
        assert_eq!(m.exec_time(5, ProcId(1)), 10);
        assert_eq!(m.exec_time(5, ProcId(2)), 20);
        assert_eq!(m.slowdown(ProcId(2)), 4);
        assert_eq!(m.min_slowdown(), 1);
        // Uniform related machine is homogeneous even if slower than 1.
        assert!(Machine::related(vec![3, 3]).is_homogeneous());
        assert_eq!(Machine::related(vec![3, 3]).min_slowdown(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_procs_panics() {
        let _ = Machine::new(0);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_slowdown_panics() {
        let _ = Machine::related(vec![1, 0]);
    }
}
