//! Schedule serialisation: a serde-friendly mirror, a line-oriented text
//! format for CLI interchange, and the binary [`wire`] codec the
//! `flb-service` protocol rides on.
//!
//! Text format:
//!
//! ```text
//! # comment
//! procs 4
//! speeds 1 1 2 4                       (optional: per-proc slowdowns)
//! s <task> <proc> <start> <finish>    (one line per task, any order)
//! ```

use crate::{Placement, ProcId, Schedule};
use flb_graph::Time;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Serde-friendly mirror of [`Schedule`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleData {
    /// Per-processor slowdown factors of the target machine (all 1 on the
    /// paper's homogeneous machines); the length is the processor count.
    pub slowdowns: Vec<Time>,
    /// `(proc, start, finish)` per task, indexed by task id.
    pub placements: Vec<(usize, Time, Time)>,
}

impl From<&Schedule> for ScheduleData {
    fn from(s: &Schedule) -> Self {
        ScheduleData {
            slowdowns: s
                .machine()
                .procs()
                .map(|p| s.machine().slowdown(p))
                .collect(),
            placements: s
                .placements()
                .iter()
                .map(|p| (p.proc.0, p.start, p.finish))
                .collect(),
        }
    }
}

impl From<ScheduleData> for Schedule {
    fn from(d: ScheduleData) -> Self {
        let placements = d
            .placements
            .into_iter()
            .map(|(proc, start, finish)| Placement {
                proc: ProcId(proc),
                start,
                finish,
            })
            .collect();
        Schedule::from_raw_on(crate::Machine::related(d.slowdowns), placements)
    }
}

/// Errors from [`parse_text`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScheduleTextError {
    /// A line could not be parsed (1-based line number).
    Malformed(usize, String),
    /// A task id appears twice or is missing.
    BadCoverage(String),
}

impl fmt::Display for ScheduleTextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleTextError::Malformed(line, msg) => write!(f, "line {line}: {msg}"),
            ScheduleTextError::BadCoverage(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for ScheduleTextError {}

/// Emits the text format.
#[must_use]
pub fn to_text(s: &Schedule) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "procs {}", s.num_procs());
    // `speeds` must be emitted whenever any slowdown differs from 1 — a
    // *uniformly slow* machine (e.g. all-3) is homogeneous but not unit.
    if s.machine().procs().any(|p| s.machine().slowdown(p) != 1) {
        let speeds: Vec<String> = s
            .machine()
            .procs()
            .map(|p| s.machine().slowdown(p).to_string())
            .collect();
        let _ = writeln!(out, "speeds {}", speeds.join(" "));
    }
    for (i, p) in s.placements().iter().enumerate() {
        let _ = writeln!(out, "s {} {} {} {}", i, p.proc.0, p.start, p.finish);
    }
    out
}

/// Parses the text format. Placement lines may appear in any order but must
/// cover task ids `0..n` exactly once.
pub fn parse_text(text: &str) -> Result<Schedule, ScheduleTextError> {
    let mut procs: usize = 0;
    let mut speeds: Option<Vec<Time>> = None;
    let mut entries: Vec<(usize, Placement)> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_ascii_whitespace();
        match parts.next() {
            Some("procs") => {
                procs = parts.next().and_then(|x| x.parse().ok()).ok_or_else(|| {
                    ScheduleTextError::Malformed(lineno, "expected `procs N`".into())
                })?;
            }
            Some("speeds") => {
                let parsed: Option<Vec<Time>> = parts.map(|x| x.parse().ok()).collect();
                match parsed {
                    Some(v) if !v.is_empty() && v.iter().all(|&x| x >= 1) => {
                        speeds = Some(v);
                    }
                    _ => {
                        return Err(ScheduleTextError::Malformed(
                            lineno,
                            "expected `speeds <s0> <s1> ...` (all >= 1)".into(),
                        ))
                    }
                }
            }
            Some("s") => {
                let mut num = || -> Option<u64> { parts.next()?.parse().ok() };
                match (num(), num(), num(), num()) {
                    (Some(t), Some(p), Some(st), Some(ft)) => entries.push((
                        t as usize,
                        Placement {
                            proc: ProcId(p as usize),
                            start: st,
                            finish: ft,
                        },
                    )),
                    _ => {
                        return Err(ScheduleTextError::Malformed(
                            lineno,
                            "expected `s <task> <proc> <start> <finish>`".into(),
                        ))
                    }
                }
            }
            Some(other) => {
                return Err(ScheduleTextError::Malformed(
                    lineno,
                    format!("unknown directive {other:?}"),
                ))
            }
            None => unreachable!("non-empty trimmed line"),
        }
    }

    let n = entries.len();
    let mut placements = vec![None; n];
    for (t, p) in entries {
        let slot = placements.get_mut(t).ok_or_else(|| {
            ScheduleTextError::BadCoverage(format!("task id {t} out of range 0..{n}"))
        })?;
        if slot.replace(p).is_some() {
            return Err(ScheduleTextError::BadCoverage(format!(
                "task id {t} appears twice"
            )));
        }
    }
    let placements: Vec<Placement> = placements
        .into_iter()
        .enumerate()
        .map(|(t, p)| {
            p.ok_or_else(|| ScheduleTextError::BadCoverage(format!("task id {t} missing")))
        })
        .collect::<Result<_, _>>()?;
    // Placements must target a declared processor; tolerating out-of-range
    // ids here would push a panic into every downstream consumer.
    let declared = match &speeds {
        Some(v) => v.len(),
        None => procs.max(1),
    };
    if let Some(p) = placements.iter().find(|p| p.proc.0 >= declared) {
        return Err(ScheduleTextError::BadCoverage(format!(
            "placement on {} but the header declares {declared} processor(s)",
            p.proc
        )));
    }
    let machine = match speeds {
        Some(v) => {
            if v.len() != procs {
                return Err(ScheduleTextError::BadCoverage(format!(
                    "speeds lists {} processors, header declares {procs}",
                    v.len()
                )));
            }
            crate::Machine::related(v)
        }
        None => crate::Machine::new(procs.max(1)),
    };
    Ok(Schedule::from_raw_on(machine, placements))
}

pub mod wire {
    //! Compact binary wire codec for task graphs and schedules.
    //!
    //! This is the payload format of the `flb-service` protocol: all
    //! integers are fixed-width little-endian, collections are
    //! length-prefixed, and decoding re-validates everything it can
    //! (graphs go through the checking builder, schedule placements must
    //! target a declared processor). The format carries no
    //! self-description beyond those lengths — framing and versioning are
    //! the transport's job.

    use super::ScheduleData;
    use crate::{Machine, Placement, ProcId, Schedule};
    use flb_graph::serialize::TaskGraphData;
    use flb_graph::TaskGraph;
    use std::fmt;

    /// Hard cap on decoded collection lengths: a corrupt or hostile
    /// length prefix must not drive a multi-gigabyte allocation.
    pub const MAX_ITEMS: usize = 1 << 24;

    /// Errors from decoding.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub enum WireError {
        /// The buffer ended before the announced data did.
        Truncated,
        /// A field held an impossible value (message says which).
        Malformed(String),
    }

    impl fmt::Display for WireError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                WireError::Truncated => f.write_str("truncated wire data"),
                WireError::Malformed(msg) => write!(f, "malformed wire data: {msg}"),
            }
        }
    }

    impl std::error::Error for WireError {}

    fn malformed(msg: impl Into<String>) -> WireError {
        WireError::Malformed(msg.into())
    }

    /// Append-only encoder over a byte buffer.
    #[derive(Default)]
    pub struct Writer {
        buf: Vec<u8>,
    }

    impl Writer {
        /// A fresh, empty writer.
        #[must_use]
        pub fn new() -> Self {
            Self::default()
        }

        /// Appends one byte.
        pub fn put_u8(&mut self, v: u8) {
            self.buf.push(v);
        }

        /// Appends a `u32`, little-endian.
        pub fn put_u32(&mut self, v: u32) {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }

        /// Appends a `u64`, little-endian.
        pub fn put_u64(&mut self, v: u64) {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }

        /// Appends a length-prefixed UTF-8 string.
        pub fn put_str(&mut self, s: &str) {
            self.put_u32(s.len() as u32);
            self.buf.extend_from_slice(s.as_bytes());
        }

        /// The encoded bytes.
        #[must_use]
        pub fn into_bytes(self) -> Vec<u8> {
            self.buf
        }
    }

    /// Cursor-style decoder over a byte slice.
    pub struct Reader<'a> {
        buf: &'a [u8],
    }

    impl<'a> Reader<'a> {
        /// A reader over `buf`.
        #[must_use]
        pub fn new(buf: &'a [u8]) -> Self {
            Reader { buf }
        }

        /// Bytes not yet consumed.
        #[must_use]
        pub fn remaining(&self) -> usize {
            self.buf.len()
        }

        fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
            if self.buf.len() < n {
                return Err(WireError::Truncated);
            }
            let (head, tail) = self.buf.split_at(n);
            self.buf = tail;
            Ok(head)
        }

        /// Reads one byte.
        pub fn u8(&mut self) -> Result<u8, WireError> {
            Ok(self.take(1)?[0])
        }

        /// Reads a little-endian `u32`.
        pub fn u32(&mut self) -> Result<u32, WireError> {
            Ok(u32::from_le_bytes(
                self.take(4)?.try_into().expect("4 bytes"),
            ))
        }

        /// Reads a little-endian `u64`.
        pub fn u64(&mut self) -> Result<u64, WireError> {
            Ok(u64::from_le_bytes(
                self.take(8)?.try_into().expect("8 bytes"),
            ))
        }

        /// Reads a length as `u32` and bounds-checks it against
        /// [`MAX_ITEMS`] and the bytes actually remaining (each item
        /// takes at least `min_item_bytes`).
        pub fn len(&mut self, what: &str, min_item_bytes: usize) -> Result<usize, WireError> {
            let n = self.u32()? as usize;
            if n > MAX_ITEMS || n.saturating_mul(min_item_bytes) > self.remaining() {
                return Err(malformed(format!("{what} count {n} exceeds the payload")));
            }
            Ok(n)
        }

        /// Reads a length-prefixed UTF-8 string.
        pub fn str(&mut self) -> Result<String, WireError> {
            let n = self.len("string byte", 1)?;
            String::from_utf8(self.take(n)?.to_vec()).map_err(|_| malformed("string is not UTF-8"))
        }
    }

    /// Encodes a task graph (name, computation costs, edge list).
    pub fn put_graph(w: &mut Writer, g: &TaskGraph) {
        let data = TaskGraphData::from(g);
        w.put_str(&data.name);
        w.put_u32(data.comp.len() as u32);
        for c in &data.comp {
            w.put_u64(*c);
        }
        w.put_u32(data.edges.len() as u32);
        for (s, d, c) in &data.edges {
            w.put_u32(*s as u32);
            w.put_u32(*d as u32);
            w.put_u64(*c);
        }
    }

    /// Decodes a task graph, re-validating it through the checking builder
    /// (dangling edges and cycles are rejected).
    pub fn get_graph(r: &mut Reader<'_>) -> Result<TaskGraph, WireError> {
        let name = r.str()?;
        let v = r.len("task", 8)?;
        let mut comp = Vec::with_capacity(v);
        for _ in 0..v {
            comp.push(r.u64()?);
        }
        let e = r.len("edge", 16)?;
        let mut edges = Vec::with_capacity(e);
        for _ in 0..e {
            let s = r.u32()? as usize;
            let d = r.u32()? as usize;
            let c = r.u64()?;
            edges.push((s, d, c));
        }
        TaskGraph::try_from(TaskGraphData { name, comp, edges })
            .map_err(|e| malformed(format!("invalid graph: {e}")))
    }

    /// Encodes a machine (per-processor slowdowns).
    pub fn put_machine(w: &mut Writer, m: &Machine) {
        w.put_u32(m.num_procs() as u32);
        for p in m.procs() {
            w.put_u64(m.slowdown(p));
        }
    }

    /// Decodes a machine.
    pub fn get_machine(r: &mut Reader<'_>) -> Result<Machine, WireError> {
        let p = r.len("processor", 8)?;
        if p == 0 {
            return Err(malformed("a machine needs at least one processor"));
        }
        let mut slow = Vec::with_capacity(p);
        for _ in 0..p {
            let s = r.u64()?;
            if s == 0 {
                return Err(malformed("slowdown factors must be at least 1"));
            }
            slow.push(s);
        }
        Ok(Machine::related(slow))
    }

    /// Encodes a schedule (machine plus per-task placements).
    pub fn put_schedule(w: &mut Writer, s: &Schedule) {
        let data = ScheduleData::from(s);
        w.put_u32(data.slowdowns.len() as u32);
        for sl in &data.slowdowns {
            w.put_u64(*sl);
        }
        w.put_u32(data.placements.len() as u32);
        for (proc, start, finish) in &data.placements {
            w.put_u32(*proc as u32);
            w.put_u64(*start);
            w.put_u64(*finish);
        }
    }

    /// Decodes a schedule; placements must target a declared processor.
    pub fn get_schedule(r: &mut Reader<'_>) -> Result<Schedule, WireError> {
        let machine = get_machine(r)?;
        let n = r.len("placement", 20)?;
        let mut placements = Vec::with_capacity(n);
        for _ in 0..n {
            let proc = r.u32()? as usize;
            let start = r.u64()?;
            let finish = r.u64()?;
            if proc >= machine.num_procs() {
                return Err(malformed(format!(
                    "placement on p{proc} but the machine has {} processor(s)",
                    machine.num_procs()
                )));
            }
            placements.push(Placement {
                proc: ProcId(proc),
                start,
                finish,
            });
        }
        Ok(Schedule::from_raw_on(machine, placements))
    }

    /// Convenience: a graph as a standalone byte buffer.
    #[must_use]
    pub fn encode_graph(g: &TaskGraph) -> Vec<u8> {
        let mut w = Writer::new();
        put_graph(&mut w, g);
        w.into_bytes()
    }

    /// Convenience: decodes a standalone graph buffer.
    pub fn decode_graph(buf: &[u8]) -> Result<TaskGraph, WireError> {
        get_graph(&mut Reader::new(buf))
    }

    /// Convenience: a schedule as a standalone byte buffer.
    #[must_use]
    pub fn encode_schedule(s: &Schedule) -> Vec<u8> {
        let mut w = Writer::new();
        put_schedule(&mut w, s);
        w.into_bytes()
    }

    /// Convenience: decodes a standalone schedule buffer.
    pub fn decode_schedule(buf: &[u8]) -> Result<Schedule, WireError> {
        get_schedule(&mut Reader::new(buf))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Machine, ScheduleBuilder};
    use flb_graph::paper::fig1;
    use flb_graph::TaskId;

    fn table1_schedule() -> Schedule {
        let g = fig1();
        let m = Machine::new(2);
        let mut b = ScheduleBuilder::new(&g, &m);
        b.place(TaskId(0), ProcId(0), 0);
        b.place(TaskId(3), ProcId(0), 2);
        b.place(TaskId(1), ProcId(1), 3);
        b.place(TaskId(2), ProcId(0), 5);
        b.place(TaskId(4), ProcId(1), 5);
        b.place(TaskId(5), ProcId(0), 7);
        b.place(TaskId(6), ProcId(1), 8);
        b.place(TaskId(7), ProcId(0), 12);
        b.build()
    }

    #[test]
    fn data_roundtrip() {
        let s = table1_schedule();
        let d = ScheduleData::from(&s);
        let s2: Schedule = d.clone().into();
        assert_eq!(s2, s);
        assert_eq!(ScheduleData::from(&s2), d);
    }

    #[test]
    fn text_roundtrip() {
        let s = table1_schedule();
        let text = to_text(&s);
        let s2 = parse_text(&text).unwrap();
        assert_eq!(s2, s);
    }

    #[test]
    fn text_parses_out_of_order_and_comments() {
        let s = parse_text("# demo\nprocs 2\ns 1 1 3 5\ns 0 0 0 2\n").unwrap();
        assert_eq!(s.num_procs(), 2);
        assert_eq!(s.start(TaskId(0)), 0);
        assert_eq!(s.start(TaskId(1)), 3);
    }

    #[test]
    fn text_errors() {
        assert!(matches!(
            parse_text("procs x"),
            Err(ScheduleTextError::Malformed(1, _))
        ));
        assert!(matches!(
            parse_text("s 0 0 0"),
            Err(ScheduleTextError::Malformed(1, _))
        ));
        assert!(matches!(
            parse_text("wat"),
            Err(ScheduleTextError::Malformed(1, _))
        ));
        // Duplicate task id.
        assert!(matches!(
            parse_text("procs 1\ns 0 0 0 1\ns 0 0 2 3"),
            Err(ScheduleTextError::BadCoverage(_))
        ));
        // Gap in coverage (id 2 of 0..2 present, 0 missing).
        assert!(matches!(
            parse_text("procs 1\ns 1 0 0 1\ns 0 0 2 3\ns 5 0 4 5"),
            Err(ScheduleTextError::BadCoverage(_))
        ));
        // Placement on an undeclared processor.
        assert!(matches!(
            parse_text("procs 2\ns 0 9 0 1"),
            Err(ScheduleTextError::BadCoverage(_))
        ));
        assert!(matches!(
            parse_text("procs 2\nspeeds 1 2\ns 0 2 0 1"),
            Err(ScheduleTextError::BadCoverage(_))
        ));
    }

    #[test]
    fn wire_schedule_roundtrip() {
        let s = table1_schedule();
        let bytes = wire::encode_schedule(&s);
        assert_eq!(wire::decode_schedule(&bytes).unwrap(), s);

        // Heterogeneous machine survives too.
        let het = Schedule::from_raw_on(Machine::related(vec![1, 3]), s.placements().to_vec());
        let bytes = wire::encode_schedule(&het);
        assert_eq!(wire::decode_schedule(&bytes).unwrap(), het);
    }

    #[test]
    fn wire_graph_roundtrip() {
        let g = fig1();
        let bytes = wire::encode_graph(&g);
        let g2 = wire::decode_graph(&bytes).unwrap();
        assert_eq!(g2.name(), g.name());
        assert_eq!(g2.num_tasks(), g.num_tasks());
        assert_eq!(g2.num_edges(), g.num_edges());
        for t in g.tasks() {
            assert_eq!(g2.comp(t), g.comp(t));
            assert_eq!(g2.succs(t), g.succs(t));
        }
    }

    #[test]
    fn wire_rejects_corruption() {
        use wire::WireError;
        let s = table1_schedule();
        let bytes = wire::encode_schedule(&s);
        // Any strict prefix fails to decode (either as a truncation or as
        // a length prefix that now overruns the payload).
        for cut in 0..bytes.len() {
            assert!(wire::decode_schedule(&bytes[..cut]).is_err(), "cut {cut}");
        }
        // A length prefix pointing past the payload is malformed, not an
        // allocation attempt.
        let mut huge = bytes.clone();
        huge[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            wire::decode_schedule(&huge),
            Err(WireError::Malformed(_))
        ));
        // A graph with a dangling edge is rejected by the builder.
        let mut w = wire::Writer::new();
        w.put_str("bad");
        w.put_u32(1); // one task
        w.put_u64(5);
        w.put_u32(1); // one edge to a task that does not exist
        w.put_u32(0);
        w.put_u32(7);
        w.put_u64(1);
        assert!(matches!(
            wire::decode_graph(&w.into_bytes()),
            Err(WireError::Malformed(_))
        ));
    }
}
