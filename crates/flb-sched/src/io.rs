//! Schedule serialisation: a serde-friendly mirror plus a line-oriented
//! text format for CLI interchange.
//!
//! Text format:
//!
//! ```text
//! # comment
//! procs 4
//! speeds 1 1 2 4                       (optional: per-proc slowdowns)
//! s <task> <proc> <start> <finish>    (one line per task, any order)
//! ```

use crate::{Placement, ProcId, Schedule};
use flb_graph::Time;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Serde-friendly mirror of [`Schedule`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleData {
    /// Per-processor slowdown factors of the target machine (all 1 on the
    /// paper's homogeneous machines); the length is the processor count.
    pub slowdowns: Vec<Time>,
    /// `(proc, start, finish)` per task, indexed by task id.
    pub placements: Vec<(usize, Time, Time)>,
}

impl From<&Schedule> for ScheduleData {
    fn from(s: &Schedule) -> Self {
        ScheduleData {
            slowdowns: s
                .machine()
                .procs()
                .map(|p| s.machine().slowdown(p))
                .collect(),
            placements: s
                .placements()
                .iter()
                .map(|p| (p.proc.0, p.start, p.finish))
                .collect(),
        }
    }
}

impl From<ScheduleData> for Schedule {
    fn from(d: ScheduleData) -> Self {
        let placements = d
            .placements
            .into_iter()
            .map(|(proc, start, finish)| Placement {
                proc: ProcId(proc),
                start,
                finish,
            })
            .collect();
        Schedule::from_raw_on(crate::Machine::related(d.slowdowns), placements)
    }
}

/// Errors from [`parse_text`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScheduleTextError {
    /// A line could not be parsed (1-based line number).
    Malformed(usize, String),
    /// A task id appears twice or is missing.
    BadCoverage(String),
}

impl fmt::Display for ScheduleTextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleTextError::Malformed(line, msg) => write!(f, "line {line}: {msg}"),
            ScheduleTextError::BadCoverage(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for ScheduleTextError {}

/// Emits the text format.
#[must_use]
pub fn to_text(s: &Schedule) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "procs {}", s.num_procs());
    if !s.machine().is_homogeneous() {
        let speeds: Vec<String> = s
            .machine()
            .procs()
            .map(|p| s.machine().slowdown(p).to_string())
            .collect();
        let _ = writeln!(out, "speeds {}", speeds.join(" "));
    }
    for (i, p) in s.placements().iter().enumerate() {
        let _ = writeln!(out, "s {} {} {} {}", i, p.proc.0, p.start, p.finish);
    }
    out
}

/// Parses the text format. Placement lines may appear in any order but must
/// cover task ids `0..n` exactly once.
pub fn parse_text(text: &str) -> Result<Schedule, ScheduleTextError> {
    let mut procs: usize = 0;
    let mut speeds: Option<Vec<Time>> = None;
    let mut entries: Vec<(usize, Placement)> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_ascii_whitespace();
        match parts.next() {
            Some("procs") => {
                procs = parts.next().and_then(|x| x.parse().ok()).ok_or_else(|| {
                    ScheduleTextError::Malformed(lineno, "expected `procs N`".into())
                })?;
            }
            Some("speeds") => {
                let parsed: Option<Vec<Time>> = parts.map(|x| x.parse().ok()).collect();
                match parsed {
                    Some(v) if !v.is_empty() && v.iter().all(|&x| x >= 1) => {
                        speeds = Some(v);
                    }
                    _ => {
                        return Err(ScheduleTextError::Malformed(
                            lineno,
                            "expected `speeds <s0> <s1> ...` (all >= 1)".into(),
                        ))
                    }
                }
            }
            Some("s") => {
                let mut num = || -> Option<u64> { parts.next()?.parse().ok() };
                match (num(), num(), num(), num()) {
                    (Some(t), Some(p), Some(st), Some(ft)) => entries.push((
                        t as usize,
                        Placement {
                            proc: ProcId(p as usize),
                            start: st,
                            finish: ft,
                        },
                    )),
                    _ => {
                        return Err(ScheduleTextError::Malformed(
                            lineno,
                            "expected `s <task> <proc> <start> <finish>`".into(),
                        ))
                    }
                }
            }
            Some(other) => {
                return Err(ScheduleTextError::Malformed(
                    lineno,
                    format!("unknown directive {other:?}"),
                ))
            }
            None => unreachable!("non-empty trimmed line"),
        }
    }

    let n = entries.len();
    let mut placements = vec![None; n];
    for (t, p) in entries {
        let slot = placements.get_mut(t).ok_or_else(|| {
            ScheduleTextError::BadCoverage(format!("task id {t} out of range 0..{n}"))
        })?;
        if slot.replace(p).is_some() {
            return Err(ScheduleTextError::BadCoverage(format!(
                "task id {t} appears twice"
            )));
        }
    }
    let placements: Vec<Placement> = placements
        .into_iter()
        .enumerate()
        .map(|(t, p)| {
            p.ok_or_else(|| ScheduleTextError::BadCoverage(format!("task id {t} missing")))
        })
        .collect::<Result<_, _>>()?;
    let machine = match speeds {
        Some(v) => {
            if v.len() != procs {
                return Err(ScheduleTextError::BadCoverage(format!(
                    "speeds lists {} processors, header declares {procs}",
                    v.len()
                )));
            }
            crate::Machine::related(v)
        }
        None => crate::Machine::new(procs.max(1)),
    };
    Ok(Schedule::from_raw_on(machine, placements))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Machine, ScheduleBuilder};
    use flb_graph::paper::fig1;
    use flb_graph::TaskId;

    fn table1_schedule() -> Schedule {
        let g = fig1();
        let m = Machine::new(2);
        let mut b = ScheduleBuilder::new(&g, &m);
        b.place(TaskId(0), ProcId(0), 0);
        b.place(TaskId(3), ProcId(0), 2);
        b.place(TaskId(1), ProcId(1), 3);
        b.place(TaskId(2), ProcId(0), 5);
        b.place(TaskId(4), ProcId(1), 5);
        b.place(TaskId(5), ProcId(0), 7);
        b.place(TaskId(6), ProcId(1), 8);
        b.place(TaskId(7), ProcId(0), 12);
        b.build()
    }

    #[test]
    fn data_roundtrip() {
        let s = table1_schedule();
        let d = ScheduleData::from(&s);
        let s2: Schedule = d.clone().into();
        assert_eq!(s2, s);
        assert_eq!(ScheduleData::from(&s2), d);
    }

    #[test]
    fn text_roundtrip() {
        let s = table1_schedule();
        let text = to_text(&s);
        let s2 = parse_text(&text).unwrap();
        assert_eq!(s2, s);
    }

    #[test]
    fn text_parses_out_of_order_and_comments() {
        let s = parse_text("# demo\nprocs 2\ns 1 1 3 5\ns 0 0 0 2\n").unwrap();
        assert_eq!(s.num_procs(), 2);
        assert_eq!(s.start(TaskId(0)), 0);
        assert_eq!(s.start(TaskId(1)), 3);
    }

    #[test]
    fn text_errors() {
        assert!(matches!(
            parse_text("procs x"),
            Err(ScheduleTextError::Malformed(1, _))
        ));
        assert!(matches!(
            parse_text("s 0 0 0"),
            Err(ScheduleTextError::Malformed(1, _))
        ));
        assert!(matches!(
            parse_text("wat"),
            Err(ScheduleTextError::Malformed(1, _))
        ));
        // Duplicate task id.
        assert!(matches!(
            parse_text("procs 1\ns 0 0 0 1\ns 0 0 2 3"),
            Err(ScheduleTextError::BadCoverage(_))
        ));
        // Gap in coverage (id 2 of 0..2 present, 0 missing).
        assert!(matches!(
            parse_text("procs 1\ns 1 0 0 1\ns 0 0 2 3\ns 5 0 4 5"),
            Err(ScheduleTextError::BadCoverage(_))
        ));
    }
}
