//! Schedules and the incremental schedule builder.
//!
//! [`ScheduleBuilder`] maintains every partial-schedule quantity defined in
//! paper §2 — `PRT(p)`, `FT(t)`, `LMT(t)`, `EP(t)`, `EMT(t,p)`, `EST(t,p)` —
//! so that FLB and all baseline algorithms share one implementation of the
//! scheduling semantics, and differ only in *which* task–processor pair they
//! pick each iteration.

use crate::{Machine, ProcId};
use flb_graph::{TaskGraph, TaskId, Time};

/// Where and when one task executes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Placement {
    /// Processor the task runs on (`PROC(t)`).
    pub proc: ProcId,
    /// Start time (`ST(t)`).
    pub start: Time,
    /// Finish time (`FT(t) = ST(t) + exec_time(comp(t), proc)`; on the
    /// paper's homogeneous machines simply `ST(t) + comp(t)`).
    pub finish: Time,
}

/// A complete schedule: a placement for every task of a graph on a machine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schedule {
    machine: Machine,
    placements: Vec<Placement>,
    /// Tasks per processor, ordered by start time.
    proc_tasks: Vec<Vec<TaskId>>,
}

impl Schedule {
    /// Builds a schedule directly from raw placements (no validation; use
    /// [`crate::validate::validate`] to check it). Intended for tests,
    /// deserialisation and simulators.
    #[must_use]
    pub fn from_raw(procs: usize, placements: Vec<Placement>) -> Self {
        Self::from_raw_on(Machine::new(procs), placements)
    }

    /// [`from_raw`](Self::from_raw) for an explicit (possibly
    /// heterogeneous) machine.
    #[must_use]
    pub fn from_raw_on(machine: Machine, placements: Vec<Placement>) -> Self {
        // Tolerate out-of-range processor ids so the validator can report
        // them instead of this constructor panicking.
        let rows = placements
            .iter()
            .map(|p| p.proc.0 + 1)
            .max()
            .unwrap_or(0)
            .max(machine.num_procs());
        let mut proc_tasks: Vec<Vec<TaskId>> = vec![Vec::new(); rows];
        let mut by_start: Vec<(Time, TaskId)> = placements
            .iter()
            .enumerate()
            .map(|(i, p)| (p.start, TaskId(i)))
            .collect();
        by_start.sort_unstable();
        for (_, t) in by_start {
            proc_tasks[placements[t.0].proc.0].push(t);
        }
        Schedule {
            machine,
            placements,
            proc_tasks,
        }
    }

    /// The machine this schedule targets.
    #[must_use]
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Number of processors of the machine this schedule targets.
    #[must_use]
    pub fn num_procs(&self) -> usize {
        self.machine.num_procs()
    }

    /// Number of scheduled tasks.
    #[must_use]
    pub fn num_tasks(&self) -> usize {
        self.placements.len()
    }

    /// The placement of task `t`.
    #[must_use]
    pub fn placement(&self, t: TaskId) -> Placement {
        self.placements[t.0]
    }

    /// Processor of task `t`.
    #[must_use]
    pub fn proc(&self, t: TaskId) -> ProcId {
        self.placements[t.0].proc
    }

    /// Start time of task `t`.
    #[must_use]
    pub fn start(&self, t: TaskId) -> Time {
        self.placements[t.0].start
    }

    /// Finish time of task `t`.
    #[must_use]
    pub fn finish(&self, t: TaskId) -> Time {
        self.placements[t.0].finish
    }

    /// Tasks assigned to processor `p`, in start-time order.
    #[must_use]
    pub fn tasks_on(&self, p: ProcId) -> &[TaskId] {
        &self.proc_tasks[p.0]
    }

    /// The parallel completion time `T_par = max_p PRT(p)`.
    #[must_use]
    pub fn makespan(&self) -> Time {
        self.placements.iter().map(|p| p.finish).max().unwrap_or(0)
    }

    /// All placements, indexed by task id.
    #[must_use]
    pub fn placements(&self) -> &[Placement] {
        &self.placements
    }
}

/// Incremental schedule construction with the paper's partial-schedule
/// quantities.
///
/// Invariants enforced (with `assert!` on the cheap ones, `debug_assert!`
/// on the `O(preds)` ones):
///
/// * a task is placed at most once;
/// * appended placements never start before `PRT(p)` (no overlap);
/// * a task is placed only when every predecessor already is, no earlier
///   than its data-ready time on that processor.
#[derive(Clone, Debug)]
pub struct ScheduleBuilder<'g> {
    graph: &'g TaskGraph,
    machine: Machine,
    placed: Vec<Option<Placement>>,
    prt: Vec<Time>,
    proc_tasks: Vec<Vec<TaskId>>,
    n_placed: usize,
}

impl<'g> ScheduleBuilder<'g> {
    /// Starts an empty schedule of `graph` on `machine`.
    #[must_use]
    pub fn new(graph: &'g TaskGraph, machine: &Machine) -> Self {
        ScheduleBuilder {
            graph,
            machine: machine.clone(),
            placed: vec![None; graph.num_tasks()],
            prt: vec![0; machine.num_procs()],
            proc_tasks: vec![Vec::new(); machine.num_procs()],
            n_placed: 0,
        }
    }

    /// The task graph being scheduled.
    #[must_use]
    pub fn graph(&self) -> &'g TaskGraph {
        self.graph
    }

    /// The machine being scheduled onto.
    #[must_use]
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Number of processors.
    #[must_use]
    pub fn num_procs(&self) -> usize {
        self.machine.num_procs()
    }

    /// Number of tasks placed so far.
    #[must_use]
    pub fn num_placed(&self) -> usize {
        self.n_placed
    }

    /// Whether every task has been placed.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.n_placed == self.graph.num_tasks()
    }

    /// Whether `t` has been placed.
    #[must_use]
    pub fn is_placed(&self, t: TaskId) -> bool {
        self.placed[t.0].is_some()
    }

    /// Processor ready time `PRT(p)`: finish time of the last task on `p`.
    #[must_use]
    pub fn prt(&self, p: ProcId) -> Time {
        self.prt[p.0]
    }

    /// The processor with the smallest `PRT` (ties: smallest id) — "the
    /// processor becoming idle the earliest". `O(P)`; algorithms that need
    /// this in `O(log P)` (FLB, FCP) keep their own processor heap.
    #[must_use]
    pub fn earliest_idle_proc(&self) -> ProcId {
        let i = self
            .prt
            .iter()
            .enumerate()
            .min_by_key(|&(i, &t)| (t, i))
            .map(|(i, _)| i)
            .expect("machine has at least one processor");
        ProcId(i)
    }

    /// Finish time of a placed task.
    ///
    /// # Panics
    ///
    /// Panics if `t` is unplaced.
    #[must_use]
    pub fn ft(&self, t: TaskId) -> Time {
        self.placed[t.0].expect("FT of unplaced task").finish
    }

    /// Processor of a placed task, or `None` if unplaced.
    #[must_use]
    pub fn proc_of(&self, t: TaskId) -> Option<ProcId> {
        self.placed[t.0].map(|p| p.proc)
    }

    /// Whether every predecessor of `t` has been placed (paper §2: `t` is
    /// *ready*).
    #[must_use]
    pub fn is_ready(&self, t: TaskId) -> bool {
        !self.is_placed(t) && self.graph.preds(t).iter().all(|&(p, _)| self.is_placed(p))
    }

    /// Last message arrival time
    /// `LMT(t) = max over (t',t) in E of (FT(t') + comm(t',t))`; 0 for entry
    /// tasks. Requires all predecessors placed.
    #[must_use]
    pub fn lmt(&self, t: TaskId) -> Time {
        self.graph
            .preds(t)
            .iter()
            .map(|&(p, c)| self.ft(p) + c)
            .max()
            .unwrap_or(0)
    }

    /// Enabling processor `EP(t)`: the processor the last message arrives
    /// from (`None` for entry tasks). Ties on the arrival time are broken
    /// toward the smallest processor id, then smallest predecessor id, which
    /// reproduces the paper's Table 1 trace.
    #[must_use]
    pub fn ep(&self, t: TaskId) -> Option<ProcId> {
        self.graph
            .preds(t)
            .iter()
            .map(|&(p, c)| {
                let proc = self.proc_of(p).expect("predecessor placed");
                (self.ft(p) + c, proc, p)
            })
            // max by arrival; ties -> smallest proc id, then smallest pred id
            .max_by(|a, b| {
                (a.0, std::cmp::Reverse(a.1), std::cmp::Reverse(a.2)).cmp(&(
                    b.0,
                    std::cmp::Reverse(b.1),
                    std::cmp::Reverse(b.2),
                ))
            })
            .map(|(_, proc, _)| proc)
    }

    /// Effective message arrival time on `p`:
    /// `EMT(t,p) = max over preds of (FT(t') + comm·[PROC(t') ≠ p])`; 0 for
    /// entry tasks. Messages from predecessors already on `p` are free.
    #[must_use]
    pub fn emt(&self, t: TaskId, p: ProcId) -> Time {
        self.graph
            .preds(t)
            .iter()
            .map(|&(q, c)| {
                let ft = self.ft(q);
                if self.proc_of(q) == Some(p) {
                    ft
                } else {
                    ft + c
                }
            })
            .max()
            .unwrap_or(0)
    }

    /// Estimated start time `EST(t,p) = max(EMT(t,p), PRT(p))`.
    #[must_use]
    pub fn est(&self, t: TaskId, p: ProcId) -> Time {
        self.emt(t, p).max(self.prt(p))
    }

    /// Earliest start of `t` on `p` allowing insertion into idle gaps
    /// (used by the insertion-based MCP ablation): the earliest time
    /// `>= EMT(t,p)` at which an idle interval of length `comp(t)` exists.
    #[must_use]
    pub fn est_insertion(&self, t: TaskId, p: ProcId) -> Time {
        let ready = self.emt(t, p);
        let need = self.machine.exec_time(self.graph.comp(t), p);
        let mut candidate = ready;
        for &other in &self.proc_tasks[p.0] {
            let pl = self.placed[other.0].expect("proc_tasks holds placed tasks");
            if pl.start >= candidate + need {
                return candidate; // gap before `other` fits
            }
            candidate = candidate.max(pl.finish);
        }
        candidate
    }

    /// Places `t` on `p` starting at `start`, appending after the
    /// processor's last task.
    ///
    /// # Panics
    ///
    /// Panics if `t` is already placed or `start < PRT(p)`; debug-asserts
    /// readiness and `start >= EMT(t,p)`.
    pub fn place(&mut self, t: TaskId, p: ProcId, start: Time) {
        assert!(self.placed[t.0].is_none(), "task {t} placed twice");
        assert!(
            start >= self.prt[p.0],
            "append of {t} on {p} at {start} before PRT {}",
            self.prt[p.0]
        );
        debug_assert!(self.is_ready(t), "placing non-ready task {t}");
        debug_assert!(
            start >= self.emt(t, p),
            "placing {t} on {p} at {start} before its data arrives at {}",
            self.emt(t, p)
        );
        let finish = start + self.machine.exec_time(self.graph.comp(t), p);
        self.placed[t.0] = Some(Placement {
            proc: p,
            start,
            finish,
        });
        self.prt[p.0] = finish;
        self.proc_tasks[p.0].push(t);
        self.n_placed += 1;
    }

    /// Places `t` on `p` at `start`, allowed to sit in an idle gap between
    /// already-placed tasks (insertion scheduling).
    ///
    /// # Panics
    ///
    /// Panics on double placement or overlap with an existing task on `p`;
    /// debug-asserts readiness and the data-arrival bound.
    pub fn place_insert(&mut self, t: TaskId, p: ProcId, start: Time) {
        assert!(self.placed[t.0].is_none(), "task {t} placed twice");
        debug_assert!(self.is_ready(t), "placing non-ready task {t}");
        debug_assert!(
            start >= self.emt(t, p),
            "placing {t} on {p} at {start} before its data arrives at {}",
            self.emt(t, p)
        );
        let finish = start + self.machine.exec_time(self.graph.comp(t), p);
        // Find the insertion point keeping proc_tasks sorted by
        // (start, finish, id) — the same order validation uses, so a
        // zero-duration task sharing its start with a longer one lands
        // before it instead of tripping the overlap asserts below.
        let placed = &self.placed;
        let row = &self.proc_tasks[p.0];
        let idx = row.partition_point(|&o| {
            let pl = placed[o.0].expect("placed");
            (pl.start, pl.finish, o) < (start, finish, t)
        });
        if idx > 0 {
            let before = placed[row[idx - 1].0].expect("placed");
            assert!(
                before.finish <= start,
                "insertion of {t} at {start} overlaps {} finishing at {}",
                row[idx - 1],
                before.finish
            );
        }
        if idx < row.len() {
            let after = placed[row[idx].0].expect("placed");
            assert!(
                finish <= after.start,
                "insertion of {t} finishing {finish} overlaps {} starting at {}",
                row[idx],
                after.start
            );
        }
        self.proc_tasks[p.0].insert(idx, t);
        self.placed[t.0] = Some(Placement {
            proc: p,
            start,
            finish,
        });
        self.prt[p.0] = self.prt[p.0].max(finish);
        self.n_placed += 1;
    }

    /// Raises `PRT(p)` to at least `floor` without placing a task.
    ///
    /// Schedule surgery uses this to forbid new work on a processor before
    /// a given instant — e.g. the repair time of a partially executed
    /// schedule, or the completion of an in-flight task whose placement is
    /// not part of the graph being (re)scheduled.
    pub fn advance_prt(&mut self, p: ProcId, floor: Time) {
        let prt = &mut self.prt[p.0];
        *prt = (*prt).max(floor);
    }

    /// Finalises the schedule.
    ///
    /// # Panics
    ///
    /// Panics unless every task has been placed.
    #[must_use]
    pub fn build(self) -> Schedule {
        assert!(
            self.is_complete(),
            "schedule incomplete: {}/{} tasks placed",
            self.n_placed,
            self.graph.num_tasks()
        );
        Schedule {
            machine: self.machine,
            placements: self
                .placed
                .into_iter()
                .map(|p| p.expect("placed"))
                .collect(),
            proc_tasks: self.proc_tasks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flb_graph::paper::fig1;
    use flb_graph::TaskGraphBuilder;

    #[test]
    fn place_insert_tolerates_zero_duration_neighbours() {
        // Found by the conformance fuzzer: a zero-computation task placed
        // at time 0 made est_insertion propose slot 0 for the next task,
        // which the old start-only insertion order then rejected as an
        // overlap. Zero-width intervals at a boundary are not overlaps
        // (validate agrees), so this must succeed.
        let mut gb = TaskGraphBuilder::new();
        let a = gb.add_task(0);
        let b = gb.add_task(1);
        let g = gb.build().unwrap();
        let m = Machine::new(1);
        let mut sb = ScheduleBuilder::new(&g, &m);
        sb.place_insert(a, ProcId(0), 0);
        assert_eq!(sb.est_insertion(b, ProcId(0)), 0);
        sb.place_insert(b, ProcId(0), 0);
        let s = sb.build();
        assert_eq!(crate::validate::validate(&g, &s), Ok(()));
        assert_eq!(s.makespan(), 1);
        // The zero-width task sorts before the unit-width one.
        assert_eq!(s.tasks_on(ProcId(0)), &[a, b]);
    }

    #[test]
    fn builder_places_and_tracks_prt() {
        let g = fig1();
        let m = Machine::new(2);
        let mut b = ScheduleBuilder::new(&g, &m);
        assert!(!b.is_complete());
        assert_eq!(b.prt(ProcId(0)), 0);
        b.place(TaskId(0), ProcId(0), 0);
        assert_eq!(b.prt(ProcId(0)), 2);
        assert_eq!(b.ft(TaskId(0)), 2);
        assert_eq!(b.proc_of(TaskId(0)), Some(ProcId(0)));
        assert_eq!(b.num_placed(), 1);
    }

    #[test]
    fn lmt_emt_est_match_paper_trace_step1() {
        // After t0 on p0 at 0 (FT=2): LMT(t1)=3, LMT(t2)=6, LMT(t3)=3;
        // EMT on p0 is 2 for all three (same-processor message), on p1 the
        // full arrival; EP is p0.
        let g = fig1();
        let m = Machine::new(2);
        let mut b = ScheduleBuilder::new(&g, &m);
        b.place(TaskId(0), ProcId(0), 0);
        assert_eq!(b.lmt(TaskId(1)), 3);
        assert_eq!(b.lmt(TaskId(2)), 6);
        assert_eq!(b.lmt(TaskId(3)), 3);
        for t in [1, 2, 3] {
            assert_eq!(b.emt(TaskId(t), ProcId(0)), 2);
            assert_eq!(b.ep(TaskId(t)), Some(ProcId(0)));
        }
        assert_eq!(b.emt(TaskId(1), ProcId(1)), 3);
        assert_eq!(b.emt(TaskId(2), ProcId(1)), 6);
        // EST = max(EMT, PRT).
        assert_eq!(b.est(TaskId(1), ProcId(0)), 2);
        assert_eq!(b.est(TaskId(1), ProcId(1)), 3);
    }

    #[test]
    fn entry_task_has_no_ep_and_zero_lmt() {
        let g = fig1();
        let m = Machine::new(2);
        let b = ScheduleBuilder::new(&g, &m);
        assert_eq!(b.lmt(TaskId(0)), 0);
        assert_eq!(b.ep(TaskId(0)), None);
        assert_eq!(b.emt(TaskId(0), ProcId(1)), 0);
        assert!(b.is_ready(TaskId(0)));
        assert!(!b.is_ready(TaskId(7)));
    }

    #[test]
    fn ep_tie_breaks_to_smallest_proc() {
        // Two predecessors on different processors, equal arrival times.
        let mut gb = TaskGraphBuilder::new();
        let a = gb.add_task(2);
        let c = gb.add_task(2);
        let t = gb.add_task(1);
        gb.add_edge(a, t, 3).unwrap();
        gb.add_edge(c, t, 3).unwrap();
        let g = gb.build().unwrap();
        let m = Machine::new(2);
        let mut b = ScheduleBuilder::new(&g, &m);
        b.place(a, ProcId(1), 0);
        b.place(c, ProcId(0), 0);
        // Both messages arrive at 5; EP must be p0.
        assert_eq!(b.lmt(t), 5);
        assert_eq!(b.ep(t), Some(ProcId(0)));
    }

    #[test]
    fn earliest_idle_proc_breaks_ties_by_id() {
        let g = fig1();
        let m = Machine::new(3);
        let mut b = ScheduleBuilder::new(&g, &m);
        assert_eq!(b.earliest_idle_proc(), ProcId(0));
        b.place(TaskId(0), ProcId(0), 0);
        assert_eq!(b.earliest_idle_proc(), ProcId(1));
    }

    #[test]
    fn build_produces_consistent_schedule() {
        let mut gb = TaskGraphBuilder::new();
        let a = gb.add_task(2);
        let c = gb.add_task(3);
        gb.add_edge(a, c, 5).unwrap();
        let g = gb.build().unwrap();
        let m = Machine::new(2);
        let mut b = ScheduleBuilder::new(&g, &m);
        b.place(a, ProcId(0), 0);
        b.place(c, ProcId(1), 7);
        let s = b.build();
        assert_eq!(s.makespan(), 10);
        assert_eq!(s.proc(c), ProcId(1));
        assert_eq!(s.start(c), 7);
        assert_eq!(s.finish(c), 10);
        assert_eq!(s.tasks_on(ProcId(0)), &[a]);
        assert_eq!(s.tasks_on(ProcId(1)), &[c]);
        assert_eq!(s.num_procs(), 2);
        assert_eq!(s.num_tasks(), 2);
    }

    #[test]
    #[should_panic(expected = "placed twice")]
    fn double_place_panics() {
        let g = fig1();
        let m = Machine::new(1);
        let mut b = ScheduleBuilder::new(&g, &m);
        b.place(TaskId(0), ProcId(0), 0);
        b.place(TaskId(0), ProcId(0), 5);
    }

    #[test]
    #[should_panic(expected = "before PRT")]
    fn overlapping_append_panics() {
        let g = fig1();
        let m = Machine::new(1);
        let mut b = ScheduleBuilder::new(&g, &m);
        b.place(TaskId(0), ProcId(0), 0);
        // t3 is ready (its only pred t0 is placed) but 1 < PRT(p0) = 2.
        b.place(TaskId(3), ProcId(0), 1);
    }

    #[test]
    #[should_panic(expected = "incomplete")]
    fn incomplete_build_panics() {
        let g = fig1();
        let m = Machine::new(1);
        let b = ScheduleBuilder::new(&g, &m);
        let _ = b.build();
    }

    #[test]
    fn insertion_into_gap() {
        // Three independent tasks; create a gap on p0 then insert into it.
        let mut gb = TaskGraphBuilder::new();
        let a = gb.add_task(2);
        let c = gb.add_task(2);
        let d = gb.add_task(2);
        let g = gb.build().unwrap();
        let _ = (a, c, d);
        let m = Machine::new(1);
        let mut b = ScheduleBuilder::new(&g, &m);
        b.place_insert(TaskId(0), ProcId(0), 0);
        b.place_insert(TaskId(1), ProcId(0), 10);
        // Gap [2, 10): est_insertion finds 2.
        assert_eq!(b.est_insertion(TaskId(2), ProcId(0)), 2);
        b.place_insert(TaskId(2), ProcId(0), 2);
        let s = b.build();
        assert_eq!(s.tasks_on(ProcId(0)), &[TaskId(0), TaskId(2), TaskId(1)]);
        assert_eq!(s.makespan(), 12);
    }

    #[test]
    fn est_insertion_skips_too_small_gaps() {
        let mut gb = TaskGraphBuilder::new();
        gb.add_task(1); // t0
        gb.add_task(5); // t1
        gb.add_task(3); // t2: needs 3 units
        let g = gb.build().unwrap();
        let m = Machine::new(1);
        let mut b = ScheduleBuilder::new(&g, &m);
        b.place_insert(TaskId(0), ProcId(0), 2); // busy [2,3)
        b.place_insert(TaskId(1), ProcId(0), 5); // busy [5,10)
                                                 // Gaps: [0,2) too small for comp 3, [3,5) too small -> append at 10.
        assert_eq!(b.est_insertion(TaskId(2), ProcId(0)), 10);
        // But a 2-unit gap would fit a comp-2 task: t2 has comp 3, so check
        // with EMT pressure instead: ready time 0, first fitting slot 10.
        b.place_insert(TaskId(2), ProcId(0), 10);
        assert_eq!(b.build().makespan(), 13);
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn insertion_overlap_panics() {
        let mut gb = TaskGraphBuilder::new();
        gb.add_task(4);
        gb.add_task(4);
        let g = gb.build().unwrap();
        let m = Machine::new(1);
        let mut b = ScheduleBuilder::new(&g, &m);
        b.place_insert(TaskId(0), ProcId(0), 0);
        b.place_insert(TaskId(1), ProcId(0), 2);
    }
}
