//! Schedule quality metrics used in the paper's evaluation.
//!
//! * **speedup** (Fig. 3): sequential time over makespan;
//! * **NSL** — normalised schedule length (Fig. 4): makespan over the
//!   makespan of a reference algorithm (MCP in the paper);
//! * **efficiency**, **utilisation** and idle time as supporting metrics.

use crate::{ProcId, Schedule};
use flb_graph::{TaskGraph, Time};

/// Speedup `S = T_seq / T_par` where `T_seq` is the best sequential time:
/// the sum of all computation costs executed on the *fastest* processor
/// class (on the paper's homogeneous machines this is simply the total
/// computation).
///
/// ```
/// use flb_sched::{metrics::speedup, Machine, ProcId, ScheduleBuilder};
/// use flb_graph::{TaskGraphBuilder, TaskId};
///
/// let mut b = TaskGraphBuilder::new();
/// b.add_task(4);
/// b.add_task(4);
/// let g = b.build().unwrap();
/// let mut sb = ScheduleBuilder::new(&g, &Machine::new(2));
/// sb.place(TaskId(0), ProcId(0), 0);
/// sb.place(TaskId(1), ProcId(1), 0);
/// assert_eq!(speedup(&g, &sb.build()), 2.0);
/// ```
#[must_use]
pub fn speedup(g: &TaskGraph, s: &Schedule) -> f64 {
    let t_seq = g.total_comp() * s.machine().min_slowdown();
    t_seq as f64 / s.makespan() as f64
}

/// Normalised schedule length: this schedule's makespan over a reference
/// makespan (the paper normalises against MCP).
#[must_use]
pub fn nsl(s: &Schedule, reference_makespan: Time) -> f64 {
    s.makespan() as f64 / reference_makespan as f64
}

/// Efficiency `S / P`.
#[must_use]
pub fn efficiency(g: &TaskGraph, s: &Schedule) -> f64 {
    speedup(g, s) / s.num_procs() as f64
}

/// Fraction of `[0, makespan)` each processor spends computing.
#[must_use]
pub fn utilisation(g: &TaskGraph, s: &Schedule) -> Vec<f64> {
    let span = s.makespan().max(1) as f64;
    (0..s.num_procs())
        .map(|p| {
            let busy: Time = s
                .tasks_on(ProcId(p))
                .iter()
                .map(|&t| s.machine().exec_time(g.comp(t), ProcId(p)))
                .sum();
            busy as f64 / span
        })
        .collect()
}

/// Total idle time summed over processors:
/// `P · makespan − Σ busy time` (busy time respects per-processor speeds).
#[must_use]
pub fn total_idle(g: &TaskGraph, s: &Schedule) -> Time {
    let busy: Time = g
        .tasks()
        .map(|t| s.machine().exec_time(g.comp(t), s.proc(t)))
        .sum();
    s.num_procs() as Time * s.makespan() - busy
}

/// A bundle of the common metrics, convenient for reporting.
#[derive(Clone, Debug, PartialEq)]
pub struct Summary {
    /// Schedule makespan `T_par`.
    pub makespan: Time,
    /// Speedup vs the sequential time.
    pub speedup: f64,
    /// Efficiency (speedup / P).
    pub efficiency: f64,
    /// Summed idle time across processors.
    pub idle: Time,
}

/// Computes a [`Summary`] for a schedule.
#[must_use]
pub fn summarise(g: &TaskGraph, s: &Schedule) -> Summary {
    Summary {
        makespan: s.makespan(),
        speedup: speedup(g, s),
        efficiency: efficiency(g, s),
        idle: total_idle(g, s),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Machine, ScheduleBuilder};
    use flb_graph::{TaskGraphBuilder, TaskId};

    /// Two independent unit-cost-2 tasks on two processors: perfect split.
    fn perfect() -> (TaskGraph, Schedule) {
        let mut b = TaskGraphBuilder::new();
        b.add_task(2);
        b.add_task(2);
        let g = b.build().unwrap();
        let m = Machine::new(2);
        let mut sb = ScheduleBuilder::new(&g, &m);
        sb.place(TaskId(0), ProcId(0), 0);
        sb.place(TaskId(1), ProcId(1), 0);
        let s = sb.build();
        (g, s)
    }

    #[test]
    fn perfect_split_metrics() {
        let (g, s) = perfect();
        assert_eq!(s.makespan(), 2);
        assert_eq!(speedup(&g, &s), 2.0);
        assert_eq!(efficiency(&g, &s), 1.0);
        assert_eq!(total_idle(&g, &s), 0);
        assert_eq!(utilisation(&g, &s), vec![1.0, 1.0]);
    }

    #[test]
    fn serial_schedule_metrics() {
        let mut b = TaskGraphBuilder::new();
        b.add_task(2);
        b.add_task(2);
        let g = b.build().unwrap();
        let m = Machine::new(2);
        let mut sb = ScheduleBuilder::new(&g, &m);
        sb.place(TaskId(0), ProcId(0), 0);
        sb.place(TaskId(1), ProcId(0), 2);
        let s = sb.build();
        assert_eq!(speedup(&g, &s), 1.0);
        assert_eq!(efficiency(&g, &s), 0.5);
        assert_eq!(total_idle(&g, &s), 4);
        assert_eq!(utilisation(&g, &s), vec![1.0, 0.0]);
    }

    #[test]
    fn nsl_relative_to_reference() {
        let (_, s) = perfect();
        assert_eq!(nsl(&s, 2), 1.0);
        assert_eq!(nsl(&s, 4), 0.5);
        assert_eq!(nsl(&s, 1), 2.0);
    }

    #[test]
    fn summary_bundles_consistently() {
        let (g, s) = perfect();
        let sum = summarise(&g, &s);
        assert_eq!(sum.makespan, 2);
        assert_eq!(sum.speedup, 2.0);
        assert_eq!(sum.efficiency, 1.0);
        assert_eq!(sum.idle, 0);
    }
}
