//! Makespan lower bounds — no schedule on the given machine can finish
//! earlier than these, whatever the algorithm.

use flb_graph::levels::critical_path_comp_only;
use flb_graph::{TaskGraph, Time};

/// The computation-only critical-path bound: even with free communication
/// and unlimited processors, the longest dependence chain must execute
/// sequentially.
#[must_use]
pub fn critical_path_bound(g: &TaskGraph) -> Time {
    critical_path_comp_only(g)
}

/// The load bound: `P` processors cannot do `T_seq` total work faster than
/// `ceil(T_seq / P)`.
#[must_use]
pub fn load_bound(g: &TaskGraph, procs: usize) -> Time {
    g.total_comp().div_ceil(procs as Time)
}

/// The combined lower bound: the larger of the critical-path and load
/// bounds.
#[must_use]
pub fn makespan_lower_bound(g: &TaskGraph, procs: usize) -> Time {
    critical_path_bound(g).max(load_bound(g, procs))
}

/// Machine-aware lower bound for (possibly) related processors:
///
/// * chain bound — the computation-only critical path executed entirely on
///   the fastest class: `CP_comp · min_slowdown`;
/// * capacity bound — processor `p` completes work at rate `1/slow[p]`, so
///   `T ≥ total_comp / Σ_p (1/slow[p])`.
///
/// Reduces exactly to [`makespan_lower_bound`] on homogeneous machines.
#[must_use]
pub fn makespan_lower_bound_on(g: &TaskGraph, machine: &crate::Machine) -> Time {
    let chain = critical_path_comp_only(g) * machine.min_slowdown();
    let capacity: f64 = machine
        .procs()
        .map(|p| 1.0 / machine.slowdown(p) as f64)
        .sum();
    let load = (g.total_comp() as f64 / capacity).ceil() as Time;
    chain.max(load)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flb_graph::{gen, paper::fig1};

    #[test]
    fn fig1_bounds() {
        let g = fig1();
        // Computation-only critical path: t0 t3 t5 t7 = 2+3+3+2 = 10.
        assert_eq!(critical_path_bound(&g), 10);
        // Total comp 19 over 2 procs -> ceil = 10.
        assert_eq!(load_bound(&g, 2), 10);
        assert_eq!(makespan_lower_bound(&g, 2), 10);
        // The paper's schedule (14) respects it.
        assert!(14 >= makespan_lower_bound(&g, 2));
    }

    #[test]
    fn load_bound_dominates_on_wide_graphs() {
        let g = gen::independent(10); // unit tasks
        assert_eq!(makespan_lower_bound(&g, 3), 4); // ceil(10/3)
        assert_eq!(makespan_lower_bound(&g, 16), 1); // CP bound
    }

    #[test]
    fn cp_bound_dominates_on_chains() {
        let g = gen::chain(7);
        assert_eq!(makespan_lower_bound(&g, 4), 7);
    }

    #[test]
    fn machine_aware_bound_reduces_to_homogeneous() {
        let g = gen::independent(10);
        let m = crate::Machine::new(3);
        assert_eq!(makespan_lower_bound_on(&g, &m), makespan_lower_bound(&g, 3));
    }

    #[test]
    fn machine_aware_bound_on_related_machine() {
        // 10 unit tasks on slowdowns [1, 2]: capacity 1.5/time unit ->
        // at least ceil(10 / 1.5) = 7.
        let g = gen::independent(10);
        let m = crate::Machine::related(vec![1, 2]);
        assert_eq!(makespan_lower_bound_on(&g, &m), 7);
        // A chain of 5 unit tasks is bound by the fastest class: 5 * 1.
        let c = gen::chain(5);
        assert_eq!(makespan_lower_bound_on(&c, &m), 5);
        // With only slow processors the chain bound scales.
        let slow = crate::Machine::related(vec![3, 3]);
        assert_eq!(makespan_lower_bound_on(&c, &slow), 15);
    }
}
