//! ASCII Gantt-chart rendering of schedules.

use crate::{ProcId, Schedule};
use flb_graph::TaskGraph;
use std::fmt::Write as _;

/// Renders the schedule as an ASCII Gantt chart, one row per processor,
/// scaled to at most `width` character columns.
///
/// Each task paints its interval with its id (`[t12  ]`-style when room
/// allows, a bare `#` run otherwise); idle time is rendered as `.`.
#[must_use]
pub fn render(g: &TaskGraph, s: &Schedule, width: usize) -> String {
    let width = width.clamp(20, 400);
    let span = s.makespan().max(1);
    let scale = width as f64 / span as f64;
    let mut out = String::new();
    writeln!(out, "makespan = {span}").expect("write to string");
    let _ = g; // the graph parameter keeps the API uniform; ids are enough
    for p in 0..s.num_procs() {
        let mut row = vec![b'.'; width];
        for &t in s.tasks_on(ProcId(p)) {
            let pl = s.placement(t);
            let a = ((pl.start as f64 * scale) as usize).min(width - 1);
            let b = ((pl.finish as f64 * scale).ceil() as usize).clamp(a + 1, width);
            let label = format!("t{}", t.0);
            let cell = &mut row[a..b];
            for c in cell.iter_mut() {
                *c = b'#';
            }
            // Overlay the label if it fits inside the bar.
            if label.len() <= cell.len() {
                cell[..label.len()].copy_from_slice(label.as_bytes());
            }
        }
        writeln!(
            out,
            "p{p:<3}|{}|",
            String::from_utf8(row).expect("ASCII row")
        )
        .expect("write to string");
    }
    out
}

/// Renders the schedule as a standalone SVG document (one lane per
/// processor, one rectangle per task with an id label, a time axis along
/// the bottom). Suitable for reports; `width` is the drawing width in
/// pixels.
#[must_use]
pub fn render_svg(g: &TaskGraph, s: &Schedule, width: u32) -> String {
    const LANE_H: u32 = 28;
    const LANE_GAP: u32 = 6;
    const LEFT: u32 = 44;
    const TOP: u32 = 8;
    const AXIS_H: u32 = 24;

    let width = width.clamp(200, 4000);
    let span = s.makespan().max(1) as f64;
    let plot_w = (width - LEFT - 8) as f64;
    let scale = plot_w / span;
    let procs = s.num_procs() as u32;
    let height = TOP + procs * (LANE_H + LANE_GAP) + AXIS_H;

    let mut out = String::new();
    let _ = writeln!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" font-family="monospace" font-size="11">"#
    );
    let _ = writeln!(
        out,
        r#"<rect x="0" y="0" width="{width}" height="{height}" fill="white"/>"#
    );

    // A small qualitative palette, cycled per task id.
    const PALETTE: [&str; 6] = [
        "#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#b07aa1", "#76b7b2",
    ];

    for p in 0..s.num_procs() {
        let y = TOP + p as u32 * (LANE_H + LANE_GAP);
        let _ = writeln!(
            out,
            r#"<text x="4" y="{}" dominant-baseline="middle">p{p}</text>"#,
            y + LANE_H / 2
        );
        let _ = writeln!(
            out,
            r##"<rect x="{LEFT}" y="{y}" width="{plot_w:.1}" height="{LANE_H}" fill="#f2f2f2"/>"##
        );
        for &t in s.tasks_on(ProcId(p)) {
            let pl = s.placement(t);
            let x = LEFT as f64 + pl.start as f64 * scale;
            let w = ((pl.finish - pl.start) as f64 * scale).max(1.0);
            let colour = PALETTE[t.0 % PALETTE.len()];
            let _ = writeln!(
                out,
                r#"<rect x="{x:.1}" y="{y}" width="{w:.1}" height="{LANE_H}" fill="{colour}" stroke="white"><title>t{}: [{} - {}] comp {}</title></rect>"#,
                t.0,
                pl.start,
                pl.finish,
                g.comp(t)
            );
            if w >= 22.0 {
                let _ = writeln!(
                    out,
                    r#"<text x="{:.1}" y="{}" fill="white" dominant-baseline="middle">t{}</text>"#,
                    x + 3.0,
                    y + LANE_H / 2,
                    t.0
                );
            }
        }
    }

    // Time axis: origin, midpoint, makespan.
    let axis_y = TOP + procs * (LANE_H + LANE_GAP) + 12;
    for (frac, label) in [(0.0, 0), (0.5, s.makespan() / 2), (1.0, s.makespan())] {
        let x = LEFT as f64 + plot_w * frac;
        let _ = writeln!(
            out,
            r#"<text x="{x:.1}" y="{axis_y}" text-anchor="middle">{label}</text>"#
        );
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Machine, ScheduleBuilder};
    use flb_graph::paper::fig1;
    use flb_graph::TaskId;

    #[test]
    fn renders_all_rows_and_labels() {
        let g = fig1();
        let m = Machine::new(2);
        let mut b = ScheduleBuilder::new(&g, &m);
        // Table 1 final schedule.
        b.place(TaskId(0), ProcId(0), 0);
        b.place(TaskId(3), ProcId(0), 2);
        b.place(TaskId(1), ProcId(1), 3);
        b.place(TaskId(2), ProcId(0), 5);
        b.place(TaskId(4), ProcId(1), 5);
        b.place(TaskId(5), ProcId(0), 7);
        b.place(TaskId(6), ProcId(1), 8);
        b.place(TaskId(7), ProcId(0), 12);
        let s = b.build();
        let chart = render(&g, &s, 70);
        assert!(chart.starts_with("makespan = 14"));
        assert_eq!(chart.lines().count(), 3); // header + 2 processors
        assert!(chart.contains("p0"));
        assert!(chart.contains("p1"));
        assert!(chart.contains("t0"));
        assert!(chart.contains("t7"));
        // Idle gap before t7 on p0 shows as dots.
        assert!(chart.contains('.'));
    }

    #[test]
    fn svg_contains_all_tasks_and_axis() {
        let g = fig1();
        let m = Machine::new(2);
        let mut b = ScheduleBuilder::new(&g, &m);
        b.place(TaskId(0), ProcId(0), 0);
        b.place(TaskId(3), ProcId(0), 2);
        b.place(TaskId(1), ProcId(1), 3);
        b.place(TaskId(2), ProcId(0), 5);
        b.place(TaskId(4), ProcId(1), 5);
        b.place(TaskId(5), ProcId(0), 7);
        b.place(TaskId(6), ProcId(1), 8);
        b.place(TaskId(7), ProcId(0), 12);
        let s = b.build();
        let svg = render_svg(&g, &s, 600);
        assert!(svg.starts_with("<svg "));
        assert!(svg.trim_end().ends_with("</svg>"));
        // One titled rect per task.
        for t in 0..8 {
            assert!(svg.contains(&format!("<title>t{t}:")), "missing t{t}");
        }
        // Axis shows the makespan.
        assert!(svg.contains(">14</text>"));
        // Two processor lane labels.
        assert!(svg.contains(">p0</text>"));
        assert!(svg.contains(">p1</text>"));
    }

    #[test]
    fn svg_width_clamped_and_wellformed_for_tiny_input() {
        let g = fig1();
        let m = Machine::new(1);
        let mut b = ScheduleBuilder::new(&g, &m);
        for &t in g.topological_order() {
            let start = b.est(t, ProcId(0));
            b.place(t, ProcId(0), start);
        }
        let svg = render_svg(&g, &b.build(), 1);
        assert!(svg.contains(r#"width="200""#)); // clamped lower bound
        assert_eq!(svg.matches("<svg ").count(), 1);
        assert_eq!(svg.matches("</svg>").count(), 1);
    }

    #[test]
    fn width_is_clamped() {
        let g = fig1();
        let m = Machine::new(1);
        let mut b = ScheduleBuilder::new(&g, &m);
        let mut clock = 0;
        for &t in g.topological_order() {
            let start = b.est(t, ProcId(0)).max(clock);
            b.place(t, ProcId(0), start);
            clock = start + g.comp(t);
        }
        let s = b.build();
        let tiny = render(&g, &s, 1);
        // Row length = clamp(1, 20..400) + prefix "p0  |" + "|".
        let row = tiny.lines().nth(1).unwrap();
        assert_eq!(row.len(), 4 + 1 + 20 + 1);
    }
}
