//! Scheduling substrate: machine model, schedules, validation, metrics.
//!
//! The paper's target platform (§2) is a set of `P` homogeneous processors
//! in a clique topology with contention-free communication; once two tasks
//! are on the same processor their communication cost is zero. This crate
//! provides everything *around* a scheduling algorithm:
//!
//! * [`Machine`]/[`ProcId`] — the platform model;
//! * [`Schedule`] and [`ScheduleBuilder`] — building a schedule while
//!   maintaining the partial-schedule quantities the paper defines
//!   (`PRT`, `FT`, `LMT`, `EMT`, `EST`, enabling processor);
//! * [`validate`] — a full independent checker (precedence, communication
//!   delays, processor exclusivity) used by the tests of every algorithm;
//! * [`metrics`] — makespan, speedup, NSL, efficiency;
//! * [`bounds`] — machine-independent makespan lower bounds;
//! * [`io`] — schedule serialisation (serde mirror + text format);
//! * [`gantt`] — ASCII Gantt-chart rendering;
//! * [`Scheduler`] — the trait implemented by FLB and every baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod machine;
mod schedule;

pub mod bounds;
pub mod gantt;
pub mod io;
pub mod metrics;
pub mod repair;
pub mod validate;

pub use machine::{Machine, ProcId};
pub use schedule::{Placement, Schedule, ScheduleBuilder};

use flb_graph::TaskGraph;

/// A scheduling algorithm: maps a task graph onto a machine.
///
/// Implementations must produce a schedule that passes
/// [`validate::validate`]; this is enforced by the shared test-suite in the
/// workspace-level integration tests.
pub trait Scheduler {
    /// Short display name as used in the paper's figures ("FLB", "MCP", …).
    fn name(&self) -> &'static str;

    /// Computes a complete schedule of `graph` on `machine`.
    fn schedule(&self, graph: &TaskGraph, machine: &Machine) -> Schedule;
}
