//! Schedule surgery for online repair after faults.
//!
//! When a fault-injected execution leaves a schedule partially done (see
//! `flb-sim`'s fault layer), repair works on three primitives defined
//! here:
//!
//! * [`residual_graph`] — extract the *residual* problem: every unfinished
//!   task, plus one zero-cost **pseudo-entry** per finished producer whose
//!   output a residual task still needs. A pseudo-entry is pinned (by the
//!   repair scheduler) on the processor its original ran on, at its actual
//!   finish time, so the usual `EMT` machinery prices its outputs: free
//!   for co-located consumers, full communication cost otherwise. A
//!   producer that ran on a *failed* processor keeps its pseudo-entry on
//!   that dead processor — no repair task is ever placed there, so every
//!   consumer pays the transfer from the checkpointed output, uniformly;
//! * [`splice`] — merge a repair schedule of the residual graph back into
//!   the executed prefix, producing one full schedule of the original
//!   graph;
//! * [`validate_repaired`] — an end-to-end check of a spliced schedule,
//!   extending the invariants of [`crate::validate::validate`] with the
//!   repair-specific ones (executed prefix preserved, nothing scheduled on
//!   dead processors after the repair instant, repairs start no earlier
//!   than that instant).
//!
//! The executed prefix is described by [`ExecState`], which is plain data
//! so simulators at any layer can produce it.

use crate::{Machine, Placement, ProcId, Schedule};
use flb_graph::{TaskGraph, TaskGraphBuilder, TaskId, Time};
use std::fmt;

/// Snapshot of a partially executed schedule at the repair instant.
///
/// `start`/`finish` are *as executed* (stragglers and retried messages
/// included), valid where `completed` holds. A task counts as completed
/// when it either finished by the repair instant or was already running
/// then — non-preemptive execution lets it run out; everything else is
/// residual and will be re-placed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExecState {
    /// Per task: committed (finished or running at the repair instant).
    pub completed: Vec<bool>,
    /// Executed start times (valid where `completed`).
    pub start: Vec<Time>,
    /// Executed finish times (valid where `completed`).
    pub finish: Vec<Time>,
    /// Executed processor per task (the original assignment).
    pub proc: Vec<ProcId>,
    /// Per processor: surviving (false = failed by the repair instant).
    pub alive: Vec<bool>,
    /// The repair instant: no repaired task may start earlier.
    pub at: Time,
}

impl ExecState {
    /// A blank state: nothing executed, repair instant 0 — rescheduling
    /// the whole graph on the surviving processors (the clairvoyant
    /// comparator).
    #[must_use]
    pub fn fresh(num_tasks: usize, alive: Vec<bool>) -> Self {
        ExecState {
            completed: vec![false; num_tasks],
            start: vec![0; num_tasks],
            finish: vec![0; num_tasks],
            proc: vec![ProcId(0); num_tasks],
            alive,
            at: 0,
        }
    }

    /// Number of committed tasks.
    #[must_use]
    pub fn num_completed(&self) -> usize {
        self.completed.iter().filter(|&&c| c).count()
    }

    /// Surviving processors, ascending.
    pub fn surviving_procs(&self) -> impl Iterator<Item = ProcId> + '_ {
        self.alive
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a)
            .map(|(p, _)| ProcId(p))
    }

    /// Earliest time processor `p` can take repaired work: the repair
    /// instant, or later when a committed task is still running on it.
    #[must_use]
    pub fn proc_floor(&self, p: ProcId) -> Time {
        let busy_until = (0..self.completed.len())
            .filter(|&i| self.completed[i] && self.proc[i] == p)
            .map(|i| self.finish[i])
            .max()
            .unwrap_or(0);
        self.at.max(busy_until)
    }
}

/// The residual scheduling problem extracted from a partial execution.
#[derive(Clone, Debug)]
pub struct ResidualGraph {
    /// Residual graph: pseudo-entries first (ids `0..num_pseudo`, zero
    /// computation), then every unfinished task, in original id order.
    pub graph: TaskGraph,
    /// Residual id → original id. Pseudo-entries map to the finished
    /// producer they stand for.
    pub to_orig: Vec<TaskId>,
    /// Number of pseudo-entry tasks (they occupy the lowest ids).
    pub num_pseudo: usize,
}

impl ResidualGraph {
    /// Whether residual task `t` is a pseudo-entry.
    #[must_use]
    pub fn is_pseudo(&self, t: TaskId) -> bool {
        t.0 < self.num_pseudo
    }

    /// Number of real (non-pseudo) residual tasks.
    #[must_use]
    pub fn num_residual(&self) -> usize {
        self.graph.num_tasks() - self.num_pseudo
    }

    /// Pin for pseudo-entry `t`: the processor its original producer ran
    /// on and the time its output materialised. Repair schedulers place
    /// the pseudo-entry exactly there (zero duration).
    #[must_use]
    pub fn pin(&self, t: TaskId, exec: &ExecState) -> (ProcId, Time) {
        debug_assert!(self.is_pseudo(t));
        let orig = self.to_orig[t.0];
        (exec.proc[orig.0], exec.finish[orig.0])
    }
}

/// Extracts the residual graph of `g` under `exec`, or `None` when every
/// task is committed (nothing to repair).
#[must_use]
pub fn residual_graph(g: &TaskGraph, exec: &ExecState) -> Option<ResidualGraph> {
    let v = g.num_tasks();
    // Finished producers still feeding an unfinished consumer.
    let mut needs_pseudo = vec![false; v];
    let mut any_residual = false;
    for t in g.tasks() {
        if exec.completed[t.0] {
            continue;
        }
        any_residual = true;
        for &(u, _) in g.preds(t) {
            if exec.completed[u.0] {
                needs_pseudo[u.0] = true;
            }
        }
    }
    if !any_residual {
        return None;
    }

    let mut b = TaskGraphBuilder::named(format!("{}-residual", g.name()));
    let mut to_orig: Vec<TaskId> = Vec::new();
    let mut to_res: Vec<Option<TaskId>> = vec![None; v];
    for t in g.tasks().filter(|t| needs_pseudo[t.0]) {
        to_res[t.0] = Some(b.add_task(0));
        to_orig.push(t);
    }
    let num_pseudo = to_orig.len();
    for t in g.tasks().filter(|t| !exec.completed[t.0]) {
        to_res[t.0] = Some(b.add_task(g.comp(t)));
        to_orig.push(t);
    }
    for t in g.tasks().filter(|t| !exec.completed[t.0]) {
        let dst = to_res[t.0].expect("residual task mapped");
        for &(u, c) in g.preds(t) {
            let src = to_res[u.0].expect("producer mapped (residual or pseudo)");
            b.add_edge(src, dst, c)
                .expect("subgraph of a DAG stays acyclic");
        }
    }
    let graph = b.build().expect("non-empty residual graph");
    Some(ResidualGraph {
        graph,
        to_orig,
        num_pseudo,
    })
}

/// Splices `repair` (a schedule of `residual.graph`) into the executed
/// prefix, yielding a schedule of the *original* graph: committed tasks
/// keep their executed placements, residual tasks take their repair
/// placements, pseudo-entries are dropped (their originals are already
/// covered by the executed prefix).
#[must_use]
pub fn splice(exec: &ExecState, residual: &ResidualGraph, repair: &Schedule) -> Schedule {
    let v = exec.completed.len();
    let mut placements = vec![
        Placement {
            proc: ProcId(0),
            start: 0,
            finish: 0
        };
        v
    ];
    for (i, slot) in placements.iter_mut().enumerate() {
        if exec.completed[i] {
            *slot = Placement {
                proc: exec.proc[i],
                start: exec.start[i],
                finish: exec.finish[i],
            };
        }
    }
    for r in residual.num_pseudo..residual.graph.num_tasks() {
        let orig = residual.to_orig[r];
        placements[orig.0] = repair.placement(TaskId(r));
    }
    Schedule::from_raw_on(repair.machine().clone(), placements)
}

/// A violation found by [`validate_repaired`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RepairError {
    /// The schedule covers a different number of tasks than the graph.
    WrongTaskCount {
        /// Tasks in the schedule.
        scheduled: usize,
        /// Tasks in the graph.
        expected: usize,
    },
    /// A task refers to a processor outside the machine.
    BadProcessor(TaskId, ProcId),
    /// A committed task's placement disagrees with the execution record.
    ExecutedMismatch(TaskId),
    /// A committed task ran shorter than its nominal execution time
    /// (faults can only lengthen a task, never shorten it).
    ShortDuration(TaskId),
    /// A repaired task's duration differs from its nominal execution time.
    BadDuration(TaskId),
    /// A repaired task is placed on a failed processor.
    DeadProcessor(TaskId, ProcId),
    /// A repaired task starts before the repair instant.
    BeforeRepairInstant {
        /// The offending task.
        task: TaskId,
        /// Its start time.
        start: Time,
        /// The repair instant.
        at: Time,
    },
    /// Two tasks overlap in time on one processor.
    Overlap(ProcId, TaskId, TaskId),
    /// A task starts before one of its messages arrives.
    Precedence {
        /// The predecessor whose message arrives late.
        pred: TaskId,
        /// The violating task.
        task: TaskId,
        /// Earliest legal start given that edge.
        required: Time,
        /// Actual start.
        actual: Time,
    },
}

impl fmt::Display for RepairError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepairError::WrongTaskCount {
                scheduled,
                expected,
            } => {
                write!(
                    f,
                    "repaired schedule has {scheduled} tasks, graph has {expected}"
                )
            }
            RepairError::BadProcessor(t, p) => write!(f, "task {t} on nonexistent {p}"),
            RepairError::ExecutedMismatch(t) => {
                write!(f, "committed task {t} diverges from the execution record")
            }
            RepairError::ShortDuration(t) => {
                write!(f, "committed task {t} ran shorter than its nominal time")
            }
            RepairError::BadDuration(t) => {
                write!(f, "repaired task {t}: finish != start + exec time")
            }
            RepairError::DeadProcessor(t, p) => {
                write!(f, "repaired task {t} placed on failed {p}")
            }
            RepairError::BeforeRepairInstant { task, start, at } => {
                write!(
                    f,
                    "repaired task {task} starts at {start}, before repair instant {at}"
                )
            }
            RepairError::Overlap(p, a, b) => write!(f, "tasks {a} and {b} overlap on {p}"),
            RepairError::Precedence {
                pred,
                task,
                required,
                actual,
            } => write!(
                f,
                "task {task} starts at {actual}, before message from {pred} arrives at {required}"
            ),
        }
    }
}

impl std::error::Error for RepairError {}

/// End-to-end check of a repaired schedule `s` of graph `g` against the
/// execution record `exec`:
///
/// 1. one placement per task, on an existing processor;
/// 2. committed tasks keep their executed placements verbatim, and their
///    durations are at least nominal (stragglers only lengthen);
/// 3. repaired (residual) tasks sit on surviving processors, start no
///    earlier than the repair instant, and have exactly nominal durations;
/// 4. no two tasks overlap on a processor;
/// 5. every task starts no earlier than each predecessor's finish plus
///    the edge's communication cost (zero when co-located) — committed
///    and repaired tasks are held to the same rule, which is what makes
///    the checkpointed-output model auditable end-to-end.
pub fn validate_repaired(g: &TaskGraph, exec: &ExecState, s: &Schedule) -> Result<(), RepairError> {
    if s.num_tasks() != g.num_tasks() {
        return Err(RepairError::WrongTaskCount {
            scheduled: s.num_tasks(),
            expected: g.num_tasks(),
        });
    }

    for t in g.tasks() {
        let pl = s.placement(t);
        if pl.proc.0 >= s.num_procs() {
            return Err(RepairError::BadProcessor(t, pl.proc));
        }
        let nominal = s.machine().exec_time(g.comp(t), pl.proc);
        if exec.completed[t.0] {
            if pl.proc != exec.proc[t.0]
                || pl.start != exec.start[t.0]
                || pl.finish != exec.finish[t.0]
            {
                return Err(RepairError::ExecutedMismatch(t));
            }
            if pl.finish - pl.start < nominal {
                return Err(RepairError::ShortDuration(t));
            }
        } else {
            if !exec.alive[pl.proc.0] {
                return Err(RepairError::DeadProcessor(t, pl.proc));
            }
            if pl.start < exec.at {
                return Err(RepairError::BeforeRepairInstant {
                    task: t,
                    start: pl.start,
                    at: exec.at,
                });
            }
            if pl.finish != pl.start + nominal {
                return Err(RepairError::BadDuration(t));
            }
        }
    }

    for p in 0..s.num_procs() {
        let p = ProcId(p);
        let mut row: Vec<TaskId> = s.tasks_on(p).to_vec();
        row.sort_by_key(|&t| (s.start(t), s.finish(t), t));
        for w in row.windows(2) {
            if s.finish(w[0]) > s.start(w[1]) {
                return Err(RepairError::Overlap(p, w[0], w[1]));
            }
        }
    }

    for t in g.tasks() {
        for &(pred, comm) in g.preds(t) {
            let delay = if s.proc(pred) == s.proc(t) { 0 } else { comm };
            let required = s.finish(pred) + delay;
            if s.start(t) < required {
                return Err(RepairError::Precedence {
                    pred,
                    task: t,
                    required,
                    actual: s.start(t),
                });
            }
        }
    }

    Ok(())
}

/// Convenience: the fault-free degenerate check — with nothing executed
/// and every processor alive, [`validate_repaired`] must agree with
/// [`crate::validate::validate`] on any complete schedule.
#[must_use]
pub fn machine_alive(machine: &Machine) -> Vec<bool> {
    vec![true; machine.num_procs()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScheduleBuilder;
    use flb_graph::paper::fig1;

    /// fig1's Table 1 schedule, executed fault-free to completion.
    fn full_exec() -> (TaskGraph, Schedule, ExecState) {
        let g = fig1();
        let placements = vec![
            Placement {
                proc: ProcId(0),
                start: 0,
                finish: 2,
            },
            Placement {
                proc: ProcId(1),
                start: 3,
                finish: 5,
            },
            Placement {
                proc: ProcId(0),
                start: 5,
                finish: 7,
            },
            Placement {
                proc: ProcId(0),
                start: 2,
                finish: 5,
            },
            Placement {
                proc: ProcId(1),
                start: 5,
                finish: 8,
            },
            Placement {
                proc: ProcId(0),
                start: 7,
                finish: 10,
            },
            Placement {
                proc: ProcId(1),
                start: 8,
                finish: 10,
            },
            Placement {
                proc: ProcId(0),
                start: 12,
                finish: 14,
            },
        ];
        let s = Schedule::from_raw(2, placements);
        let exec = ExecState {
            completed: vec![true; 8],
            start: (0..8).map(|t| s.start(TaskId(t))).collect(),
            finish: (0..8).map(|t| s.finish(TaskId(t))).collect(),
            proc: (0..8).map(|t| s.proc(TaskId(t))).collect(),
            alive: vec![true, true],
            at: 14,
        };
        (g, s, exec)
    }

    /// fig1 partially executed: p1 failed at 6 — t0, t1, t3 finished,
    /// t2 (running at 6 on p0) commits; t4 killed, t5..t7 residual.
    fn partial_exec() -> (TaskGraph, Schedule, ExecState) {
        let (g, s, mut exec) = full_exec();
        exec.alive = vec![true, false];
        exec.at = 6;
        for t in [4, 5, 6, 7] {
            exec.completed[t] = false;
        }
        (g, s, exec)
    }

    #[test]
    fn residual_extraction_builds_pseudo_entries() {
        let (g, _, exec) = partial_exec();
        let r = residual_graph(&g, &exec).unwrap();
        // Residual tasks: t4, t5, t6, t7. Pseudo producers: t1 (feeds t4
        // and t5), t2 (feeds t6), t3 (feeds t5). t0's consumers all
        // committed -> no pseudo.
        assert_eq!(r.num_residual(), 4);
        assert_eq!(r.num_pseudo, 3);
        assert_eq!(
            r.to_orig,
            vec![
                TaskId(1),
                TaskId(2),
                TaskId(3), // pseudo
                TaskId(4),
                TaskId(5),
                TaskId(6),
                TaskId(7), // residual
            ]
        );
        // Pseudo tasks cost nothing and are entries.
        for p in 0..r.num_pseudo {
            assert!(r.is_pseudo(TaskId(p)));
            assert_eq!(r.graph.comp(TaskId(p)), 0);
            assert_eq!(r.graph.in_degree(TaskId(p)), 0);
        }
        // t1's pseudo is pinned on dead p1 at its finish time 5.
        assert_eq!(r.pin(TaskId(0), &exec), (ProcId(1), 5));
        // Edge t1 -> t4 (comm 2) survives as pseudo(t1) -> res(t4).
        assert_eq!(r.graph.edge_comm(TaskId(0), TaskId(3)), Some(2));
        // Residual-residual edge t4 -> t7 (comm 1) survives too.
        assert_eq!(r.graph.edge_comm(TaskId(3), TaskId(6)), Some(1));
    }

    #[test]
    fn residual_of_complete_execution_is_none() {
        let (g, _, exec) = full_exec();
        assert!(residual_graph(&g, &exec).is_none());
    }

    #[test]
    fn splice_and_validate_round_trip() {
        let (g, _, exec) = partial_exec();
        let r = residual_graph(&g, &exec).unwrap();
        // Hand-build a repair schedule on the surviving p0: pin pseudos,
        // then run the four residual tasks serially after the floor.
        let m = Machine::new(2);
        let mut b = ScheduleBuilder::new(&r.graph, &m);
        let mut pins: Vec<(TaskId, ProcId, Time)> = (0..r.num_pseudo)
            .map(|i| {
                let (p, f) = r.pin(TaskId(i), &exec);
                (TaskId(i), p, f)
            })
            .collect();
        pins.sort_by_key(|&(t, p, f)| (p.0, f, t.0));
        for &(t, p, f) in &pins {
            b.place(t, p, f);
        }
        for p in exec.surviving_procs() {
            b.advance_prt(p, exec.proc_floor(p));
        }
        // proc_floor(p0) = max(at=6, t2 finishing at 7) = 7.
        assert_eq!(b.prt(ProcId(0)), 7);
        // Serial repair on p0 in topological order, at EST.
        for i in r.num_pseudo..r.graph.num_tasks() {
            let t = TaskId(i);
            let st = b.est(t, ProcId(0));
            b.place(t, ProcId(0), st);
        }
        let repair = b.build();
        let repaired = splice(&exec, &r, &repair);
        assert_eq!(validate_repaired(&g, &exec, &repaired), Ok(()));
        // Committed placements survive verbatim.
        for t in [0usize, 1, 2, 3] {
            assert_eq!(repaired.start(TaskId(t)), exec.start[t]);
            assert_eq!(repaired.proc(TaskId(t)), exec.proc[t]);
        }
        // Repaired tasks avoid dead p1 and respect the instant.
        for t in [4usize, 5, 6, 7] {
            assert_eq!(repaired.proc(TaskId(t)), ProcId(0));
            assert!(repaired.start(TaskId(t)) >= exec.at);
        }
    }

    #[test]
    fn validator_rejects_tampered_prefix_and_bad_repairs() {
        let (g, _, exec) = partial_exec();
        let r = residual_graph(&g, &exec).unwrap();
        let m = Machine::new(2);
        let mut b = ScheduleBuilder::new(&r.graph, &m);
        let mut pins: Vec<(TaskId, ProcId, Time)> = (0..r.num_pseudo)
            .map(|i| {
                let (p, f) = r.pin(TaskId(i), &exec);
                (TaskId(i), p, f)
            })
            .collect();
        pins.sort_by_key(|&(t, p, f)| (p.0, f, t.0));
        for &(t, p, f) in &pins {
            b.place(t, p, f);
        }
        for p in exec.surviving_procs() {
            b.advance_prt(p, exec.proc_floor(p));
        }
        for i in r.num_pseudo..r.graph.num_tasks() {
            let t = TaskId(i);
            let st = b.est(t, ProcId(0));
            b.place(t, ProcId(0), st);
        }
        let good = splice(&exec, &r, &b.build());
        assert_eq!(validate_repaired(&g, &exec, &good), Ok(()));

        // Tamper with the committed prefix.
        let mut placements = good.placements().to_vec();
        placements[1].start += 1;
        placements[1].finish += 1;
        let bad = Schedule::from_raw(2, placements);
        assert_eq!(
            validate_repaired(&g, &exec, &bad),
            Err(RepairError::ExecutedMismatch(TaskId(1)))
        );

        // Move a repaired task onto the dead processor.
        let mut placements = good.placements().to_vec();
        placements[6].proc = ProcId(1);
        let bad = Schedule::from_raw(2, placements);
        assert_eq!(
            validate_repaired(&g, &exec, &bad),
            Err(RepairError::DeadProcessor(TaskId(6), ProcId(1)))
        );

        // Start a repaired task before the instant (keep duration right).
        let mut placements = good.placements().to_vec();
        let d = placements[4].finish - placements[4].start;
        placements[4].start = exec.at - 1;
        placements[4].finish = exec.at - 1 + d;
        let bad = Schedule::from_raw(2, placements);
        assert!(matches!(
            validate_repaired(&g, &exec, &bad),
            Err(RepairError::BeforeRepairInstant {
                task: TaskId(4),
                ..
            }) | Err(RepairError::Overlap(..))
                | Err(RepairError::Precedence { .. })
        ));
    }

    #[test]
    fn degenerate_validator_agrees_with_plain_validate() {
        // Nothing executed, everything alive: validate_repaired reduces to
        // the plain validator on a complete fresh schedule.
        let (g, s, _) = full_exec();
        let exec = ExecState::fresh(g.num_tasks(), vec![true, true]);
        assert_eq!(validate_repaired(&g, &exec, &s), Ok(()));
        assert_eq!(crate::validate::validate(&g, &s), Ok(()));
    }

    #[test]
    fn straggled_prefix_passes_short_prefix_fails() {
        let (g, _, mut exec) = partial_exec();
        // t3 straggled: executed [2, 9] instead of [2, 5]; shift t2 after.
        exec.finish[3] = 9;
        exec.start[2] = 9;
        exec.finish[2] = 11;
        exec.at = 9;
        let r = residual_graph(&g, &exec).unwrap();
        let m = Machine::new(2);
        let mut b = ScheduleBuilder::new(&r.graph, &m);
        let mut pins: Vec<(TaskId, ProcId, Time)> = (0..r.num_pseudo)
            .map(|i| {
                let (p, f) = r.pin(TaskId(i), &exec);
                (TaskId(i), p, f)
            })
            .collect();
        pins.sort_by_key(|&(t, p, f)| (p.0, f, t.0));
        for &(t, p, f) in &pins {
            b.place(t, p, f);
        }
        for p in exec.surviving_procs() {
            b.advance_prt(p, exec.proc_floor(p));
        }
        for i in r.num_pseudo..r.graph.num_tasks() {
            let t = TaskId(i);
            let st = b.est(t, ProcId(0));
            b.place(t, ProcId(0), st);
        }
        let repaired = splice(&exec, &r, &b.build());
        assert_eq!(validate_repaired(&g, &exec, &repaired), Ok(()));

        // A committed task *shorter* than nominal is impossible -> error.
        let mut short = exec.clone();
        short.finish[0] = 1; // t0 comp 2 "ran" in 1 unit
        let mut placements = repaired.placements().to_vec();
        placements[0].finish = 1;
        let bad = Schedule::from_raw(2, placements);
        assert_eq!(
            validate_repaired(&g, &short, &bad),
            Err(RepairError::ShortDuration(TaskId(0)))
        );
    }

    #[test]
    fn error_display_strings() {
        assert_eq!(
            RepairError::DeadProcessor(TaskId(3), ProcId(1)).to_string(),
            "repaired task t3 placed on failed p1"
        );
        assert_eq!(
            RepairError::BeforeRepairInstant {
                task: TaskId(2),
                start: 4,
                at: 6
            }
            .to_string(),
            "repaired task t2 starts at 4, before repair instant 6"
        );
        assert_eq!(
            RepairError::ExecutedMismatch(TaskId(1)).to_string(),
            "committed task t1 diverges from the execution record"
        );
    }
}
