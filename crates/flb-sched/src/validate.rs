//! Independent schedule validation.
//!
//! [`validate`] re-checks a finished schedule against the task graph and
//! machine model from first principles, sharing no code with
//! [`crate::ScheduleBuilder`]: every algorithm's output is audited by logic
//! it did not use to construct that output.

use crate::{ProcId, Schedule};
use flb_graph::{TaskGraph, TaskId, Time};
use std::fmt;

/// A violation found by [`validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScheduleError {
    /// The schedule covers a different number of tasks than the graph.
    WrongTaskCount {
        /// Tasks in the schedule.
        scheduled: usize,
        /// Tasks in the graph.
        expected: usize,
    },
    /// A task refers to a processor outside the machine.
    BadProcessor(TaskId, ProcId),
    /// `finish != start + exec_time(comp, proc)`.
    BadDuration(TaskId),
    /// Two tasks overlap in time on one processor.
    Overlap(ProcId, TaskId, TaskId),
    /// A task starts before one of its messages arrives.
    Precedence {
        /// The predecessor whose message arrives late.
        pred: TaskId,
        /// The violating task.
        task: TaskId,
        /// Earliest legal start given that edge.
        required: Time,
        /// Actual start.
        actual: Time,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::WrongTaskCount {
                scheduled,
                expected,
            } => write!(f, "schedule has {scheduled} tasks, graph has {expected}"),
            ScheduleError::BadProcessor(t, p) => write!(f, "task {t} on nonexistent {p}"),
            ScheduleError::BadDuration(t) => write!(f, "task {t}: finish != start + comp"),
            ScheduleError::Overlap(p, a, b) => write!(f, "tasks {a} and {b} overlap on {p}"),
            ScheduleError::Precedence {
                pred,
                task,
                required,
                actual,
            } => write!(
                f,
                "task {task} starts at {actual}, before message from {pred} arrives at {required}"
            ),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// Checks that `s` is a feasible schedule of `g`:
///
/// 1. exactly one placement per task, on an existing processor;
/// 2. `finish = start + exec_time(comp, proc)` for every task (execution
///    times respect the machine's per-processor slowdowns);
/// 3. tasks on one processor never overlap (sequential, non-preemptive);
/// 4. every task starts no earlier than each predecessor's finish time plus
///    the edge's communication cost (zero when co-located).
pub fn validate(g: &TaskGraph, s: &Schedule) -> Result<(), ScheduleError> {
    if s.num_tasks() != g.num_tasks() {
        return Err(ScheduleError::WrongTaskCount {
            scheduled: s.num_tasks(),
            expected: g.num_tasks(),
        });
    }

    for t in g.tasks() {
        let pl = s.placement(t);
        if pl.proc.0 >= s.num_procs() {
            return Err(ScheduleError::BadProcessor(t, pl.proc));
        }
        if pl.finish != pl.start + s.machine().exec_time(g.comp(t), pl.proc) {
            return Err(ScheduleError::BadDuration(t));
        }
    }

    // Exclusivity: sort every processor's tasks by start and compare
    // neighbours.
    for p in 0..s.num_procs() {
        let p = ProcId(p);
        // Sort by finish before id so a zero-duration task sharing its
        // start with a longer one is not misreported as overlapping.
        let mut row: Vec<TaskId> = s.tasks_on(p).to_vec();
        row.sort_by_key(|&t| (s.start(t), s.finish(t), t));
        for w in row.windows(2) {
            if s.finish(w[0]) > s.start(w[1]) {
                return Err(ScheduleError::Overlap(p, w[0], w[1]));
            }
        }
    }

    // Precedence + communication delays.
    for t in g.tasks() {
        for &(pred, comm) in g.preds(t) {
            let delay = if s.proc(pred) == s.proc(t) { 0 } else { comm };
            let required = s.finish(pred) + delay;
            if s.start(t) < required {
                return Err(ScheduleError::Precedence {
                    pred,
                    task: t,
                    required,
                    actual: s.start(t),
                });
            }
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Machine, Placement, ScheduleBuilder};
    use flb_graph::paper::fig1;
    use flb_graph::TaskGraphBuilder;

    fn two_task_graph() -> TaskGraph {
        let mut b = TaskGraphBuilder::new();
        let a = b.add_task(2);
        let c = b.add_task(3);
        b.add_edge(a, c, 5).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn valid_schedule_passes() {
        let g = two_task_graph();
        let m = Machine::new(2);
        let mut b = ScheduleBuilder::new(&g, &m);
        b.place(TaskId(0), ProcId(0), 0);
        b.place(TaskId(1), ProcId(1), 7);
        assert_eq!(validate(&g, &b.build()), Ok(()));
    }

    #[test]
    fn same_proc_skips_comm_delay() {
        let g = two_task_graph();
        let s = Schedule::from_raw(
            1,
            vec![
                Placement {
                    proc: ProcId(0),
                    start: 0,
                    finish: 2,
                },
                Placement {
                    proc: ProcId(0),
                    start: 2,
                    finish: 5,
                },
            ],
        );
        assert_eq!(validate(&g, &s), Ok(()));
    }

    #[test]
    fn detects_missing_comm_delay() {
        let g = two_task_graph();
        let s = Schedule::from_raw(
            2,
            vec![
                Placement {
                    proc: ProcId(0),
                    start: 0,
                    finish: 2,
                },
                Placement {
                    proc: ProcId(1),
                    start: 3,
                    finish: 6,
                },
            ],
        );
        assert_eq!(
            validate(&g, &s),
            Err(ScheduleError::Precedence {
                pred: TaskId(0),
                task: TaskId(1),
                required: 7,
                actual: 3,
            })
        );
    }

    #[test]
    fn detects_overlap() {
        let mut b = TaskGraphBuilder::new();
        b.add_task(4);
        b.add_task(4);
        let g = b.build().unwrap();
        let s = Schedule::from_raw(
            1,
            vec![
                Placement {
                    proc: ProcId(0),
                    start: 0,
                    finish: 4,
                },
                Placement {
                    proc: ProcId(0),
                    start: 2,
                    finish: 6,
                },
            ],
        );
        assert_eq!(
            validate(&g, &s),
            Err(ScheduleError::Overlap(ProcId(0), TaskId(0), TaskId(1)))
        );
    }

    #[test]
    fn detects_bad_duration() {
        let g = two_task_graph();
        let s = Schedule::from_raw(
            2,
            vec![
                Placement {
                    proc: ProcId(0),
                    start: 0,
                    finish: 99,
                },
                Placement {
                    proc: ProcId(1),
                    start: 104,
                    finish: 107,
                },
            ],
        );
        assert_eq!(validate(&g, &s), Err(ScheduleError::BadDuration(TaskId(0))));
    }

    #[test]
    fn detects_bad_processor() {
        let g = two_task_graph();
        let s = Schedule::from_raw(
            1,
            vec![
                Placement {
                    proc: ProcId(0),
                    start: 0,
                    finish: 2,
                },
                Placement {
                    proc: ProcId(5),
                    start: 7,
                    finish: 10,
                },
            ],
        );
        assert_eq!(
            validate(&g, &s),
            Err(ScheduleError::BadProcessor(TaskId(1), ProcId(5)))
        );
    }

    #[test]
    fn detects_wrong_task_count() {
        let g = two_task_graph();
        let s = Schedule::from_raw(
            1,
            vec![Placement {
                proc: ProcId(0),
                start: 0,
                finish: 2,
            }],
        );
        assert_eq!(
            validate(&g, &s),
            Err(ScheduleError::WrongTaskCount {
                scheduled: 1,
                expected: 2
            })
        );
    }

    #[test]
    fn paper_table1_schedule_is_valid() {
        // The final schedule of Table 1:
        // p0: t0[0-2], t3[2-5], t2[5-7], t5[7-10], t7[12-14]
        // p1: t1[3-5], t4[5-8], t6[8-10]
        let g = fig1();
        let placements = vec![
            Placement {
                proc: ProcId(0),
                start: 0,
                finish: 2,
            },
            Placement {
                proc: ProcId(1),
                start: 3,
                finish: 5,
            },
            Placement {
                proc: ProcId(0),
                start: 5,
                finish: 7,
            },
            Placement {
                proc: ProcId(0),
                start: 2,
                finish: 5,
            },
            Placement {
                proc: ProcId(1),
                start: 5,
                finish: 8,
            },
            Placement {
                proc: ProcId(0),
                start: 7,
                finish: 10,
            },
            Placement {
                proc: ProcId(1),
                start: 8,
                finish: 10,
            },
            Placement {
                proc: ProcId(0),
                start: 12,
                finish: 14,
            },
        ];
        let s = Schedule::from_raw(2, placements);
        assert_eq!(validate(&g, &s), Ok(()));
        assert_eq!(s.makespan(), 14);
    }

    #[test]
    fn error_display_strings() {
        let e = ScheduleError::Overlap(ProcId(1), TaskId(2), TaskId(3));
        assert_eq!(e.to_string(), "tasks t2 and t3 overlap on p1");
        let e = ScheduleError::WrongTaskCount {
            scheduled: 1,
            expected: 2,
        };
        assert_eq!(e.to_string(), "schedule has 1 tasks, graph has 2");
    }
}
