//! FLB — Fast Load Balancing list scheduling for distributed-memory
//! machines (Rădulescu & van Gemund, ICPP 1999).
//!
//! FLB schedules, at every iteration, the ready task that can start the
//! earliest — the same criterion as ETF — but identifies that task in
//! `O(log W + log P)` per iteration instead of ETF's `O(W · P)`, for a total
//! complexity of `O(V (log W + log P) + E)`.
//!
//! # The two-pair theorem
//!
//! Given a partial schedule, call a ready task `t` **EP-type** when its last
//! message arrival time is no earlier than the ready time of its *enabling
//! processor* `EP(t)` (the processor the last message comes from):
//! `LMT(t) ≥ PRT(EP(t))`; otherwise `t` is **non-EP-type**. The paper proves
//! (appendix, Theorem 3) that the globally earliest-starting ready pair is
//! always one of just two candidates:
//!
//! 1. the EP-type task with minimum `EST(t, EP(t))` on its enabling
//!    processor, and
//! 2. the non-EP-type task with minimum `LMT(t)` on the processor that
//!    becomes idle the earliest,
//!
//! with the non-EP pair preferred on ties (its communication is already
//! overlapped with computation). [`oracle`] re-implements the exhaustive
//! ETF-style scan, and the test-suite checks the selected start time against
//! it on every step of every random graph — the Theorem 3 experiment (X1 in
//! DESIGN.md).
//!
//! # Example
//!
//! ```
//! use flb_core::Flb;
//! use flb_sched::{Machine, Scheduler, validate::validate};
//! use flb_graph::paper::fig1;
//!
//! let g = fig1();
//! let s = Flb::default().schedule(&g, &Machine::new(2));
//! assert_eq!(validate(&g, &s), Ok(()));
//! assert_eq!(s.makespan(), 14); // the paper's Table 1 result
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod run;

pub mod oracle;
pub mod repair;
pub mod request;
pub mod trace;

pub use repair::{clairvoyant_flb, naive_remap, repair_flb};
pub use request::{schedule_request, AlgorithmId, ScheduleRequest};
pub use run::{FlbRun, RunStats, Step, TieBreak};

use flb_graph::TaskGraph;
use flb_sched::{Machine, Schedule, Scheduler};

/// The FLB scheduling algorithm.
#[derive(Clone, Copy, Debug, Default)]
pub struct Flb {
    /// How ties between equal-priority tasks are broken (ablation A2);
    /// the paper uses static bottom levels.
    pub tie_break: TieBreak,
}

impl Flb {
    /// FLB with the paper's tie-breaking (static bottom level).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// FLB with a chosen tie-break rule.
    #[must_use]
    pub fn with_tie_break(tie_break: TieBreak) -> Self {
        Flb { tie_break }
    }
}

impl Scheduler for Flb {
    fn name(&self) -> &'static str {
        "FLB"
    }

    fn schedule(&self, graph: &TaskGraph, machine: &Machine) -> Schedule {
        let mut run = FlbRun::new(graph, machine, self.tie_break);
        while run.step().is_some() {}
        run.finish()
    }
}
