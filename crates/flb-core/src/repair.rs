//! Online schedule repair after processor failures.
//!
//! Given a partially executed schedule (an [`ExecState`] produced by
//! `flb_sim`'s fault layer), three repair strategies re-plan the remaining
//! work on the surviving processors:
//!
//! * [`repair_flb`] — **warm-restart FLB** on the residual graph: finished
//!   outputs enter as zero-cost pseudo-entries pinned where they
//!   materialised, surviving processors start from ready-time floors
//!   derived from the execution, and the usual FLB loop schedules the
//!   unfinished tasks. This is the paper's algorithm reused as an online
//!   repair step — its `O(V (log W + log P) + E)` cost is what makes
//!   in-situ repair plausible at scale;
//! * [`naive_remap`] — the baseline a runtime without a scheduler would
//!   use: keep every surviving placement decision, push tasks stranded on
//!   failed processors round-robin onto survivors, and replay the
//!   original order eagerly;
//! * [`clairvoyant_flb`] — the reference lower line: FLB run from scratch
//!   on the surviving machine as if the failures had been known at time
//!   zero (no stranded work, no repair instant). Not achievable online;
//!   it bounds how much of the degradation is *structural* (lost capacity)
//!   versus *transient* (work already misplaced when the fault hit).
//!
//! All three return full schedules of the original graph that pass
//! [`flb_sched::repair::validate_repaired`] against the execution record.

use crate::{FlbRun, TieBreak};
use flb_graph::{TaskGraph, TaskId, Time};
use flb_sched::repair::{residual_graph, splice, ExecState};
use flb_sched::{Machine, Placement, ProcId, Schedule, ScheduleBuilder};

/// The executed placements alone, as a schedule (used when nothing is left
/// to repair).
fn executed_schedule(machine: &Machine, exec: &ExecState) -> Schedule {
    let placements = (0..exec.completed.len())
        .map(|i| Placement {
            proc: exec.proc[i],
            start: exec.start[i],
            finish: exec.finish[i],
        })
        .collect();
    Schedule::from_raw_on(machine.clone(), placements)
}

/// Warm-restarts FLB on the residual graph of `g` under `exec` and splices
/// the result into the executed prefix.
///
/// Pseudo-entries are pinned on the processor their original producer ran
/// on — *including failed processors*: no residual task is ever placed
/// there (the warm run masks them out), so every consumer of a stranded
/// output uniformly pays the communication cost of fetching the
/// checkpointed data. Surviving processors start from
/// [`ExecState::proc_floor`] (the repair instant, or later when a
/// committed task still occupies them).
///
/// # Panics
///
/// Panics when no processor is alive.
#[must_use]
pub fn repair_flb(
    g: &TaskGraph,
    machine: &Machine,
    exec: &ExecState,
    tie_break: TieBreak,
) -> Schedule {
    assert!(
        exec.alive.iter().any(|&a| a),
        "repair needs a surviving processor"
    );
    let Some(residual) = residual_graph(g, exec) else {
        return executed_schedule(machine, exec);
    };

    let mut b = ScheduleBuilder::new(&residual.graph, machine);
    // Pin pseudo-entries where their outputs materialised. Sorted by
    // (processor, finish, id) so same-processor pins append in time order.
    let mut pins: Vec<(TaskId, ProcId, Time)> = (0..residual.num_pseudo)
        .map(|i| {
            let (p, f) = residual.pin(TaskId(i), exec);
            (TaskId(i), p, f)
        })
        .collect();
    pins.sort_by_key(|&(t, p, f)| (p.0, f, t.0));
    for &(t, p, f) in &pins {
        b.place(t, p, f);
    }
    // Floors go after the pins: advance_prt only ever raises PRT.
    for p in exec.surviving_procs() {
        b.advance_prt(p, exec.proc_floor(p));
    }

    let mut run = FlbRun::warm(b, tie_break, exec.alive.clone());
    while run.step().is_some() {}
    splice(exec, &residual, &run.finish())
}

/// The no-scheduler baseline: every residual task keeps its original
/// processor when that processor survived; tasks stranded on failed
/// processors are remapped round-robin (in task-id order) onto the
/// survivors. The original start-time order is then replayed eagerly —
/// each task starts as soon as its processor is free, its messages have
/// arrived, and the repair instant has passed.
///
/// # Panics
///
/// Panics when no processor is alive.
#[must_use]
pub fn naive_remap(g: &TaskGraph, original: &Schedule, exec: &ExecState) -> Schedule {
    let machine = original.machine();
    assert!(
        exec.alive.iter().any(|&a| a),
        "repair needs a surviving processor"
    );
    let v = g.num_tasks();
    let survivors: Vec<ProcId> = exec.surviving_procs().collect();

    // Target processor per residual task.
    let mut target: Vec<ProcId> = (0..v).map(|i| original.proc(TaskId(i))).collect();
    let mut rr = 0usize;
    for (i, t) in target.iter_mut().enumerate() {
        if !exec.completed[i] && !exec.alive[t.0] {
            *t = survivors[rr % survivors.len()];
            rr += 1;
        }
    }

    // Replay order: original start times, topological index as tie-break
    // (original starts respect precedence, so this order does too).
    let mut topo_idx = vec![0usize; v];
    for (i, &t) in g.topological_order().iter().enumerate() {
        topo_idx[t.0] = i;
    }
    let mut order: Vec<usize> = (0..v).filter(|&i| !exec.completed[i]).collect();
    order.sort_by_key(|&i| (original.start(TaskId(i)), topo_idx[i]));

    // Eager replay: committed tasks contribute their executed times.
    let mut placements: Vec<Placement> = (0..v)
        .map(|i| Placement {
            proc: exec.proc[i],
            start: exec.start[i],
            finish: exec.finish[i],
        })
        .collect();
    let mut prt: Vec<Time> = (0..machine.num_procs())
        .map(|q| {
            if exec.alive[q] {
                exec.proc_floor(ProcId(q))
            } else {
                0
            }
        })
        .collect();
    for i in order {
        let t = TaskId(i);
        let p = target[i];
        let emt = g
            .preds(t)
            .iter()
            .map(|&(u, c)| {
                let f = placements[u.0].finish;
                if placements[u.0].proc == p {
                    f
                } else {
                    f + c
                }
            })
            .max()
            .unwrap_or(0);
        let start = emt.max(prt[p.0]).max(exec.at);
        let finish = start + machine.exec_time(g.comp(t), p);
        placements[i] = Placement {
            proc: p,
            start,
            finish,
        };
        prt[p.0] = finish;
    }
    Schedule::from_raw_on(machine.clone(), placements)
}

/// The clairvoyant reference: FLB from scratch on the surviving machine,
/// as if the failures had been known at time zero. Wraps [`repair_flb`]
/// with a blank [`ExecState`] — nothing executed, repair instant 0.
///
/// # Panics
///
/// Panics when no processor is alive.
#[must_use]
pub fn clairvoyant_flb(
    g: &TaskGraph,
    machine: &Machine,
    alive: &[bool],
    tie_break: TieBreak,
) -> Schedule {
    let exec = ExecState::fresh(g.num_tasks(), alive.to_vec());
    repair_flb(g, machine, &exec, tie_break)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Flb;
    use flb_graph::paper::fig1;
    use flb_sched::repair::validate_repaired;
    use flb_sched::{validate::validate, Scheduler};

    /// fig1's Table 1 schedule with p1 failing at time 6: t0, t1, t3
    /// finished; t2 runs on p0 across the instant (commits); t4 was
    /// running on p1 (killed); t5..t7 never started.
    fn fig1_p1_fails_at_6() -> (TaskGraph, Schedule, ExecState) {
        let g = fig1();
        let s = Flb::default().schedule(&g, &Machine::new(2));
        assert_eq!(s.makespan(), 14);
        let mut exec = ExecState {
            completed: vec![true, true, true, true, false, false, false, false],
            start: (0..8).map(|t| s.start(TaskId(t))).collect(),
            finish: (0..8).map(|t| s.finish(TaskId(t))).collect(),
            proc: (0..8).map(|t| s.proc(TaskId(t))).collect(),
            alive: vec![true, false],
            at: 6,
        };
        // t2 [5,7) on p0 is running at the instant: it commits too.
        assert_eq!(exec.start[2], 5);
        exec.completed[2] = true;
        (g, s, exec)
    }

    #[test]
    fn repair_flb_validates_and_respects_survivors() {
        let (g, _, exec) = fig1_p1_fails_at_6();
        let repaired = repair_flb(&g, &Machine::new(2), &exec, TieBreak::BottomLevel);
        assert_eq!(validate_repaired(&g, &exec, &repaired), Ok(()));
        for t in [4usize, 5, 6, 7] {
            assert_eq!(
                repaired.proc(TaskId(t)),
                ProcId(0),
                "t{t} must avoid dead p1"
            );
            assert!(repaired.start(TaskId(t)) >= 6);
        }
        // Committed prefix untouched.
        for t in [0usize, 1, 2, 3] {
            assert_eq!(repaired.start(TaskId(t)), exec.start[t]);
        }
    }

    #[test]
    fn naive_remap_validates_and_is_no_better_than_repair() {
        let (g, s, exec) = fig1_p1_fails_at_6();
        let naive = naive_remap(&g, &s, &exec);
        assert_eq!(validate_repaired(&g, &exec, &naive), Ok(()));
        let repaired = repair_flb(&g, &Machine::new(2), &exec, TieBreak::BottomLevel);
        // Both serialise the residual onto the lone survivor here, so FLB
        // cannot lose; on richer machines it wins outright.
        assert!(repaired.makespan() <= naive.makespan());
    }

    #[test]
    fn clairvoyant_on_full_machine_is_plain_flb() {
        let g = fig1();
        let m = Machine::new(2);
        let cold = Flb::default().schedule(&g, &m);
        let clair = clairvoyant_flb(&g, &m, &[true, true], TieBreak::BottomLevel);
        assert_eq!(cold.placements(), clair.placements());
    }

    #[test]
    fn clairvoyant_masks_dead_processors() {
        let g = fig1();
        let m = Machine::new(2);
        let clair = clairvoyant_flb(&g, &m, &[true, false], TieBreak::BottomLevel);
        assert_eq!(validate(&g, &clair), Ok(()));
        for t in g.tasks() {
            assert_eq!(clair.proc(t), ProcId(0));
        }
        // One processor, no communication: makespan = total computation.
        assert_eq!(clair.makespan(), g.total_comp());
    }

    #[test]
    fn repair_of_complete_execution_returns_executed_schedule() {
        let g = fig1();
        let m = Machine::new(2);
        let s = Flb::default().schedule(&g, &m);
        let exec = ExecState {
            completed: vec![true; 8],
            start: (0..8).map(|t| s.start(TaskId(t))).collect(),
            finish: (0..8).map(|t| s.finish(TaskId(t))).collect(),
            proc: (0..8).map(|t| s.proc(TaskId(t))).collect(),
            alive: vec![true, true],
            at: s.makespan(),
        };
        let repaired = repair_flb(&g, &m, &exec, TieBreak::BottomLevel);
        assert_eq!(repaired.placements(), s.placements());
    }

    #[test]
    fn repair_on_larger_graphs_always_validates() {
        // Fail one processor halfway through a static schedule of each
        // generator family; both strategies must validate.
        for g in [flb_graph::gen::lu(8), flb_graph::gen::stencil(5, 6)] {
            let m = Machine::new(4);
            let s = Flb::default().schedule(&g, &m);
            let at = s.makespan() / 2;
            let dead = ProcId(1);
            let exec = ExecState {
                // Finished tasks commit; tasks still running at the
                // instant commit only on surviving processors (the dead
                // one kills its running task).
                completed: g
                    .tasks()
                    .map(|t| s.finish(t) <= at || (s.start(t) <= at && s.proc(t) != dead))
                    .collect(),
                start: g.tasks().map(|t| s.start(t)).collect(),
                finish: g.tasks().map(|t| s.finish(t)).collect(),
                proc: g.tasks().map(|t| s.proc(t)).collect(),
                alive: (0..4).map(|q| ProcId(q) != dead).collect(),
                at,
            };
            let repaired = repair_flb(&g, &m, &exec, TieBreak::BottomLevel);
            assert_eq!(validate_repaired(&g, &exec, &repaired), Ok(()));
            let naive = naive_remap(&g, &s, &exec);
            assert_eq!(validate_repaired(&g, &exec, &naive), Ok(()));
        }
    }
}
