//! Reusable schedule-request entry point: a named algorithm registry and a
//! single dispatch function covering FLB and every `flb-baselines`
//! algorithm.
//!
//! This is the serving surface that `flb-service` (the scheduler daemon)
//! and `flb-cli` both ride on: a request names an algorithm by a stable id,
//! carries a task graph and a machine, and [`schedule_request`] produces
//! the schedule deterministically — the same inputs always yield the same
//! bit-for-bit schedule, which is what makes fingerprint-keyed caching of
//! responses sound.

use crate::Flb;
use flb_baselines::{Dls, DscLlb, Etf, Fcp, Heft, Hlfet, Mcp};
use flb_graph::TaskGraph;
use flb_sched::{Machine, Schedule, Scheduler};
use std::fmt;
use std::str::FromStr;

/// Stable identifier of a compile-time scheduling algorithm.
///
/// The discriminant doubles as the wire code of the service protocol, so
/// variants must never be renumbered — only appended.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum AlgorithmId {
    /// FLB with the paper's tie-breaking (static bottom level).
    Flb = 0,
    /// Earliest Task First (exhaustive ready × processor scan).
    Etf = 1,
    /// Modified Critical Path, end-of-list placement.
    Mcp = 2,
    /// MCP with idle-slot insertion (the original formulation).
    McpInsertion = 3,
    /// Fast Critical Path.
    Fcp = 4,
    /// DSC clustering followed by LLB cluster mapping.
    DscLlb = 5,
    /// Dynamic Level Scheduling.
    Dls = 6,
    /// Heterogeneous Earliest Finish Time.
    Heft = 7,
    /// Highest Level First with Estimated Times.
    Hlfet = 8,
}

impl AlgorithmId {
    /// Every registered algorithm, in wire-code order.
    pub const ALL: [AlgorithmId; 9] = [
        AlgorithmId::Flb,
        AlgorithmId::Etf,
        AlgorithmId::Mcp,
        AlgorithmId::McpInsertion,
        AlgorithmId::Fcp,
        AlgorithmId::DscLlb,
        AlgorithmId::Dls,
        AlgorithmId::Heft,
        AlgorithmId::Hlfet,
    ];

    /// Canonical lower-case name, as accepted by [`FromStr`] and the CLI.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AlgorithmId::Flb => "flb",
            AlgorithmId::Etf => "etf",
            AlgorithmId::Mcp => "mcp",
            AlgorithmId::McpInsertion => "mcp-ins",
            AlgorithmId::Fcp => "fcp",
            AlgorithmId::DscLlb => "dsc-llb",
            AlgorithmId::Dls => "dls",
            AlgorithmId::Heft => "heft",
            AlgorithmId::Hlfet => "hlfet",
        }
    }

    /// The stable one-byte wire code.
    #[must_use]
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Inverse of [`code`](Self::code).
    #[must_use]
    pub fn from_code(code: u8) -> Option<AlgorithmId> {
        Self::ALL.get(code as usize).copied()
    }

    /// Instantiates the algorithm behind this id.
    #[must_use]
    pub fn scheduler(self) -> Box<dyn Scheduler> {
        match self {
            AlgorithmId::Flb => Box::new(Flb::default()),
            AlgorithmId::Etf => Box::new(Etf),
            AlgorithmId::Mcp => Box::new(Mcp::default()),
            AlgorithmId::McpInsertion => Box::new(Mcp::original()),
            AlgorithmId::Fcp => Box::new(Fcp),
            AlgorithmId::DscLlb => Box::new(DscLlb::default()),
            AlgorithmId::Dls => Box::new(Dls),
            AlgorithmId::Heft => Box::new(Heft),
            AlgorithmId::Hlfet => Box::new(Hlfet),
        }
    }
}

impl fmt::Display for AlgorithmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error for an algorithm name outside the registry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownAlgorithm(pub String);

impl fmt::Display for UnknownAlgorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown algorithm {:?}", self.0)
    }
}

impl std::error::Error for UnknownAlgorithm {}

impl FromStr for AlgorithmId {
    type Err = UnknownAlgorithm;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        // `dscllb` is a legacy CLI spelling kept for compatibility.
        if lower == "dscllb" {
            return Ok(AlgorithmId::DscLlb);
        }
        Self::ALL
            .into_iter()
            .find(|a| a.name() == lower)
            .ok_or_else(|| UnknownAlgorithm(s.to_owned()))
    }
}

/// A complete scheduling request: what to schedule, where, and how.
#[derive(Clone, Debug)]
pub struct ScheduleRequest {
    /// Which algorithm to run.
    pub algorithm: AlgorithmId,
    /// The task graph to schedule.
    pub graph: TaskGraph,
    /// The target machine.
    pub machine: Machine,
}

impl ScheduleRequest {
    /// Bundles a request.
    #[must_use]
    pub fn new(algorithm: AlgorithmId, graph: TaskGraph, machine: Machine) -> Self {
        ScheduleRequest {
            algorithm,
            graph,
            machine,
        }
    }
}

/// Schedules a request: dispatches to the named algorithm and returns its
/// schedule. Deterministic — equal requests produce equal schedules.
#[must_use]
pub fn schedule_request(req: &ScheduleRequest) -> Schedule {
    req.algorithm.scheduler().schedule(&req.graph, &req.machine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flb_graph::paper::fig1;

    #[test]
    fn names_roundtrip_through_fromstr() {
        for alg in AlgorithmId::ALL {
            assert_eq!(alg.name().parse::<AlgorithmId>().unwrap(), alg);
            assert_eq!(
                alg.name().to_uppercase().parse::<AlgorithmId>().unwrap(),
                alg
            );
        }
        assert_eq!(
            "dscllb".parse::<AlgorithmId>().unwrap(),
            AlgorithmId::DscLlb
        );
        assert!("frob".parse::<AlgorithmId>().is_err());
    }

    #[test]
    fn codes_roundtrip() {
        for alg in AlgorithmId::ALL {
            assert_eq!(AlgorithmId::from_code(alg.code()), Some(alg));
        }
        assert_eq!(AlgorithmId::from_code(200), None);
    }

    #[test]
    fn dispatch_matches_direct_invocation() {
        let g = fig1();
        let m = Machine::new(2);
        for alg in AlgorithmId::ALL {
            let via_request = schedule_request(&ScheduleRequest::new(alg, g.clone(), m.clone()));
            let direct = alg.scheduler().schedule(&g, &m);
            assert_eq!(via_request, direct, "{alg}");
            assert_eq!(flb_sched::validate::validate(&g, &via_request), Ok(()));
        }
    }

    #[test]
    fn flb_request_matches_paper_table1() {
        let req = ScheduleRequest::new(AlgorithmId::Flb, fig1(), Machine::new(2));
        assert_eq!(schedule_request(&req).makespan(), 14);
    }
}
