//! Execution tracing in the format of the paper's Table 1.
//!
//! Before every scheduling decision the tracer snapshots the three kinds of
//! ready-task lists exactly as Table 1 prints them:
//!
//! * per processor, the EP-type tasks it enables, ascending by
//!   `EMT(t, EP(t))`, each shown as `t[EST(t,p); BL/LMT]`;
//! * the non-EP-type tasks ascending by `LMT`, shown as `t[LMT]`;
//! * the decision `t -> p, [ST - FT]`.
//!
//! (Table 1's first bracketed figure for EP tasks is the start time the
//! task would get on its enabling processor at snapshot time, i.e.
//! `max(EMT, PRT)` — this reproduces the printed values.)

use crate::run::{FlbRun, Step, TieBreak};
use flb_graph::{TaskGraph, TaskId, Time};
use flb_sched::{Machine, Schedule};
use std::fmt::Write as _;

/// Snapshot of one EP-list entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EpEntry {
    /// The task.
    pub task: TaskId,
    /// `EST(t, EP(t))` at snapshot time (Table 1's first figure).
    pub est_on_ep: Time,
    /// Static bottom level (Table 1's `BL`).
    pub bottom_level: Time,
    /// `LMT(t)` (Table 1's denominator).
    pub lmt: Time,
}

/// Snapshot of one non-EP-list entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NonEpEntry {
    /// The task.
    pub task: TaskId,
    /// `LMT(t)`.
    pub lmt: Time,
}

/// One row of the execution trace: the lists as seen just before a
/// scheduling decision, plus the decision itself.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceRow {
    /// EP-type tasks per processor (index = processor id), in list order.
    pub ep_lists: Vec<Vec<EpEntry>>,
    /// Non-EP-type tasks in list order.
    pub non_ep: Vec<NonEpEntry>,
    /// The decision taken from this state.
    pub step: Step,
}

/// Runs FLB on `graph`/`machine` collecting a [`TraceRow`] per iteration.
#[must_use]
pub fn trace(
    graph: &TaskGraph,
    machine: &Machine,
    tie_break: TieBreak,
) -> (Schedule, Vec<TraceRow>) {
    let mut run = FlbRun::new(graph, machine, tie_break);
    let mut rows = Vec::with_capacity(graph.num_tasks());
    // One scratch buffer reused across every per-step snapshot, so the
    // tracing loop adds no per-step list allocations beyond the rows it
    // actually returns (the `_into` observer variants never clone a heap).
    let mut scratch: Vec<TaskId> = Vec::new();
    loop {
        let snapshot = snapshot_lists(&run, machine, &mut scratch);
        match run.step() {
            Some(step) => rows.push(TraceRow {
                ep_lists: snapshot.0,
                non_ep: snapshot.1,
                step,
            }),
            None => break,
        }
    }
    (run.finish(), rows)
}

fn snapshot_lists(
    run: &FlbRun<'_>,
    machine: &Machine,
    scratch: &mut Vec<TaskId>,
) -> (Vec<Vec<EpEntry>>, Vec<NonEpEntry>) {
    let ep_lists = machine
        .procs()
        .map(|p| {
            run.ep_tasks_of_into(p, scratch);
            scratch
                .iter()
                .map(|&t| EpEntry {
                    task: t,
                    est_on_ep: run.emt_on_ep_of(t).max(run.builder().prt(p)),
                    bottom_level: run.bottom_level_of(t),
                    lmt: run.lmt_of(t),
                })
                .collect()
        })
        .collect();
    run.non_ep_tasks_into(scratch);
    let non_ep = scratch
        .iter()
        .map(|&t| NonEpEntry {
            task: t,
            lmt: run.lmt_of(t),
        })
        .collect();
    (ep_lists, non_ep)
}

/// Renders the trace as a text table in the style of the paper's Table 1.
#[must_use]
pub fn render(rows: &[TraceRow]) -> String {
    let procs = rows.first().map_or(0, |r| r.ep_lists.len());
    let mut cols: Vec<String> = (0..procs).map(|p| format!("EP tasks on p{p}")).collect();
    cols.push("non-EP tasks".to_owned());
    cols.push("scheduling".to_owned());

    let mut table: Vec<Vec<String>> = vec![cols];
    for row in rows {
        let mut cells = Vec::with_capacity(procs + 2);
        for list in &row.ep_lists {
            let cell = list
                .iter()
                .map(|e| {
                    format!(
                        "t{}[{}; {}/{}]",
                        e.task.0, e.est_on_ep, e.bottom_level, e.lmt
                    )
                })
                .collect::<Vec<_>>()
                .join(" ");
            cells.push(if cell.is_empty() {
                "-".to_owned()
            } else {
                cell
            });
        }
        let non_ep = row
            .non_ep
            .iter()
            .map(|e| format!("t{}[{}]", e.task.0, e.lmt))
            .collect::<Vec<_>>()
            .join(" ");
        cells.push(if non_ep.is_empty() {
            "-".to_owned()
        } else {
            non_ep
        });
        cells.push(format!(
            "t{} -> p{}, [{} - {}]",
            row.step.task.0, row.step.proc.0, row.step.start, row.step.finish
        ));
        table.push(cells);
    }

    // Column widths.
    let ncols = table[0].len();
    let widths: Vec<usize> = (0..ncols)
        .map(|c| table.iter().map(|r| r[c].len()).max().unwrap_or(0))
        .collect();
    let mut out = String::new();
    for (i, row) in table.iter().enumerate() {
        for (c, cell) in row.iter().enumerate() {
            let _ = write!(out, "{:<w$}  ", cell, w = widths[c]);
        }
        out.truncate(out.trim_end().len());
        out.push('\n');
        if i == 0 {
            let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
            out.push_str(&"-".repeat(total));
            out.push('\n');
        }
    }
    out
}

/// Renders the trace as CSV — one row per list entry per iteration, plus a
/// `decision` row — for external analysis tools.
///
/// Columns: `iteration,kind,task,proc,est,bottom_level,lmt,start,finish`
/// (`kind` ∈ `ep | non_ep | decision`; unused fields are empty).
#[must_use]
pub fn to_csv(rows: &[TraceRow]) -> String {
    let mut out = String::from("iteration,kind,task,proc,est,bottom_level,lmt,start,finish\n");
    for (i, row) in rows.iter().enumerate() {
        for (p, list) in row.ep_lists.iter().enumerate() {
            for e in list {
                let _ = writeln!(
                    out,
                    "{i},ep,t{},p{p},{},{},{},,",
                    e.task.0, e.est_on_ep, e.bottom_level, e.lmt
                );
            }
        }
        for e in &row.non_ep {
            let _ = writeln!(out, "{i},non_ep,t{},,,,{},,", e.task.0, e.lmt);
        }
        let _ = writeln!(
            out,
            "{i},decision,t{},p{},,,,{},{}",
            row.step.task.0, row.step.proc.0, row.step.start, row.step.finish
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use flb_graph::paper::fig1;
    use flb_sched::ProcId;

    /// Full reproduction of Table 1: list contents (with EST/BL/LMT
    /// annotations) and decisions, row by row.
    #[test]
    fn table1_rows_match_paper() {
        let g = fig1();
        let m = Machine::new(2);
        let (s, rows) = trace(&g, &m, TieBreak::BottomLevel);
        assert_eq!(s.makespan(), 14);
        assert_eq!(rows.len(), 8);

        let ep = |t: usize, est: Time, bl: Time, lmt: Time| EpEntry {
            task: TaskId(t),
            est_on_ep: est,
            bottom_level: bl,
            lmt,
        };
        let ne = |t: usize, lmt: Time| NonEpEntry {
            task: TaskId(t),
            lmt,
        };

        // Row 1: only t0 ready (non-EP); schedule t0 -> p0 [0-2].
        assert!(rows[0].ep_lists[0].is_empty() && rows[0].ep_lists[1].is_empty());
        assert_eq!(rows[0].non_ep, vec![ne(0, 0)]);
        assert_eq!(rows[0].step.task, TaskId(0));

        // Row 2: t3[2;12/3] t1[2;11/3] t2[2;9/6] on p0; t3 -> p0 [2-5].
        assert_eq!(
            rows[1].ep_lists[0],
            vec![ep(3, 2, 12, 3), ep(1, 2, 11, 3), ep(2, 2, 9, 6)]
        );
        assert!(rows[1].non_ep.is_empty());
        assert_eq!(rows[1].step.task, TaskId(3));

        // Row 3: t2 stays EP on p0 (EST now 5); t1[3] non-EP; t1 -> p1 [3-5].
        assert_eq!(rows[2].ep_lists[0], vec![ep(2, 5, 9, 6)]);
        assert_eq!(rows[2].non_ep, vec![ne(1, 3)]);
        assert_eq!(rows[2].step.task, TaskId(1));
        assert_eq!(rows[2].step.proc, ProcId(1));

        // Row 4: p0: t2, t5; p1: t4; no non-EP; t2 -> p0 [5-7].
        assert_eq!(rows[3].ep_lists[0], vec![ep(2, 5, 9, 6), ep(5, 6, 8, 6)]);
        assert_eq!(rows[3].ep_lists[1], vec![ep(4, 5, 6, 7)]);
        assert!(rows[3].non_ep.is_empty());
        assert_eq!(rows[3].step.task, TaskId(2));

        // Row 5: p0: t6[7;6/8]; p1: t4[5;6/7]; non-EP t5[6]; t4 -> p1 [5-8].
        assert_eq!(rows[4].ep_lists[0], vec![ep(6, 7, 6, 8)]);
        assert_eq!(rows[4].ep_lists[1], vec![ep(4, 5, 6, 7)]);
        assert_eq!(rows[4].non_ep, vec![ne(5, 6)]);
        assert_eq!(rows[4].step.task, TaskId(4));

        // Row 6: p0: t6; non-EP t5[6]; tie at 7 prefers non-EP: t5 -> p0.
        assert_eq!(rows[5].ep_lists[0], vec![ep(6, 7, 6, 8)]);
        assert_eq!(rows[5].non_ep, vec![ne(5, 6)]);
        assert_eq!(rows[5].step.task, TaskId(5));
        assert_eq!(rows[5].step.proc, ProcId(0));
        assert!(!rows[5].step.from_ep_list);

        // Row 7: t6 demoted to non-EP (t6[8]); t6 -> p1 [8-10].
        assert!(rows[6].ep_lists[0].is_empty());
        assert_eq!(rows[6].non_ep, vec![ne(6, 8)]);
        assert_eq!(rows[6].step.task, TaskId(6));
        assert_eq!(rows[6].step.proc, ProcId(1));

        // Row 8: t7[12;2/13] EP on p0; t7 -> p0 [12-14].
        assert_eq!(rows[7].ep_lists[0], vec![ep(7, 12, 2, 13)]);
        assert!(rows[7].non_ep.is_empty());
        assert_eq!(rows[7].step.task, TaskId(7));
        assert_eq!((rows[7].step.start, rows[7].step.finish), (12, 14));
    }

    #[test]
    fn render_produces_readable_table() {
        let g = fig1();
        let m = Machine::new(2);
        let (_, rows) = trace(&g, &m, TieBreak::BottomLevel);
        let text = render(&rows);
        assert!(text.contains("EP tasks on p0"));
        assert!(text.contains("non-EP tasks"));
        assert!(text.contains("t3[2; 12/3]"));
        assert!(text.contains("t0 -> p0, [0 - 2]"));
        assert!(text.contains("t7 -> p0, [12 - 14]"));
        // Header + separator + 8 rows.
        assert_eq!(text.lines().count(), 10);
    }

    #[test]
    fn csv_export_covers_all_rows() {
        let g = fig1();
        let m = Machine::new(2);
        let (_, rows) = trace(&g, &m, TieBreak::BottomLevel);
        let csv = to_csv(&rows);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(
            lines[0],
            "iteration,kind,task,proc,est,bottom_level,lmt,start,finish"
        );
        // Exactly 8 decision rows, one per task.
        assert_eq!(csv.matches(",decision,").count(), 8);
        // Row 2's EP entries are present with their Table 1 annotations.
        assert!(csv.contains("1,ep,t3,p0,2,12,3,,"));
        assert!(csv.contains("1,ep,t1,p0,2,11,3,,"));
        // The final decision row.
        assert!(csv.contains("7,decision,t7,p0,,,,12,14"));
        // Every line has the same number of commas (well-formed CSV).
        assert!(lines.iter().all(|l| l.matches(',').count() == 8));
    }

    #[test]
    fn render_empty_trace() {
        assert_eq!(
            render(&[]),
            "non-EP tasks  scheduling\n------------------------\n"
        );
    }
}
