//! The FLB scheduling loop and its data structures.
//!
//! Direct implementation of the paper's §4.1 pseudocode (`ScheduleTask`,
//! `UpdateTaskLists`, `UpdateProcLists`, `UpdateReadyTasks`) on top of
//! [`flb_ds::IndexedMinHeap`]s:
//!
//! | paper list           | here                  | key                                   |
//! |----------------------|-----------------------|---------------------------------------|
//! | `EMT_EP_task_l[p]`   | `emt_ep[p]`           | `(EMT(t, EP(t)), ⁻bl(t))`             |
//! | `LMT_EP_task_l[p]`   | `lmt_ep[p]`           | `(LMT(t), ⁻bl(t))`                    |
//! | `nonEP_task_l`       | `non_ep`              | `(LMT(t), ⁻bl(t))`                    |
//! | `active_proc_l`      | `active_procs`        | `min EST of p's EP tasks`             |
//! | `all_proc_l`         | `all_procs`           | `PRT(p)`                              |
//!
//! (`⁻bl` = reversed static bottom level: ties on the time key go to the
//! task with the longest path to an exit, as in the paper; remaining ties go
//! to the smaller task id, provided by the heap itself.)

use flb_ds::IndexedMinHeap;
use flb_graph::{levels::bottom_levels, TaskGraph, TaskId, Time};
use flb_sched::{Machine, ProcId, Schedule, ScheduleBuilder};
use std::cmp::Reverse;

/// Tie-break rule among tasks whose primary (time) keys are equal.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TieBreak {
    /// Larger static bottom level first — the paper's rule ("the task with
    /// the longest path to any exit tasks").
    #[default]
    BottomLevel,
    /// Smaller task id first (effectively FIFO); ablation A2.
    TaskId,
}

/// Composite heap key: `(time, Reverse(bottom level))`; the heap adds the
/// task id as the final tie-break.
type TaskKey = (Time, Reverse<Time>);

/// One scheduling decision made by [`FlbRun::step`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Step {
    /// The scheduled task.
    pub task: TaskId,
    /// Destination processor.
    pub proc: ProcId,
    /// Start time (this is the minimum EST over all ready task–processor
    /// pairs: Theorem 3).
    pub start: Time,
    /// Finish time.
    pub finish: Time,
    /// Whether the EP-pair (true) or the non-EP pair (false) was selected.
    pub from_ep_list: bool,
}

/// Counters accumulated over an FLB run, used by the empirical-complexity
/// experiment (the `complexity` harness) and exposed for diagnostics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Scheduling decisions that selected the EP-pair candidate.
    pub ep_selections: usize,
    /// Scheduling decisions that selected the non-EP-pair candidate.
    pub non_ep_selections: usize,
    /// Tasks that entered the ready set as EP-type.
    pub ep_promotions: usize,
    /// Tasks that entered the ready set as non-EP-type.
    pub non_ep_promotions: usize,
    /// EP-type tasks demoted to non-EP when their enabling processor's
    /// ready time overtook their `LMT` (each costs two heap removals and
    /// one insertion — the `UpdateTaskLists` work term).
    pub demotions: usize,
    /// Largest ready-set size observed (bounded by the graph width `W`;
    /// FLB's per-step cost is `O(log max_ready + log P)`).
    pub max_ready: usize,
}

impl RunStats {
    /// Total ready-set insertions across all lists — the paper's
    /// "task lists operations" term, `O(V log W)` overall.
    #[must_use]
    pub fn list_insertions(&self) -> usize {
        self.ep_promotions + self.non_ep_promotions + self.demotions
    }
}

/// A resumable FLB execution: one [`step`](FlbRun::step) call schedules one
/// task, which lets tests and tracing observe every intermediate state.
pub struct FlbRun<'g> {
    builder: ScheduleBuilder<'g>,
    tie_break: TieBreak,
    /// Per processor: eligible to receive tasks. All true on a cold start;
    /// warm restarts (schedule repair) mask out failed processors.
    alive: Vec<bool>,
    /// Static bottom levels (tie-break priority).
    bl: Vec<Time>,
    /// Remaining unplaced predecessors per task (readiness countdown).
    missing_preds: Vec<usize>,
    /// `LMT(t)` for ready tasks.
    lmt: Vec<Time>,
    /// `EMT(t, EP(t))` for ready tasks.
    emt_on_ep: Vec<Time>,
    /// `EP(t)` for ready tasks (`usize::MAX` = entry task, no EP).
    ep: Vec<usize>,
    /// Per processor: EP-type tasks it enables, keyed by `EMT(t, EP(t))`.
    emt_ep: Vec<IndexedMinHeap<TaskKey>>,
    /// Per processor: the same tasks keyed by `LMT(t)` (drives demotions).
    lmt_ep: Vec<IndexedMinHeap<TaskKey>>,
    /// Non-EP-type ready tasks keyed by `LMT(t)`.
    non_ep: IndexedMinHeap<TaskKey>,
    /// Active processors keyed by the minimum EST of their EP tasks.
    active_procs: IndexedMinHeap<Time>,
    /// All processors keyed by `PRT(p)`.
    all_procs: IndexedMinHeap<Time>,
    /// Run counters.
    stats: RunStats,
}

impl<'g> FlbRun<'g> {
    /// Initialises the lists: entry tasks are ready and non-EP-type (they
    /// have no enabling processor); every processor has `PRT = 0`.
    #[must_use]
    pub fn new(graph: &'g TaskGraph, machine: &Machine, tie_break: TieBreak) -> Self {
        let v = graph.num_tasks();
        let p = machine.num_procs();
        let bl = match tie_break {
            TieBreak::BottomLevel => bottom_levels(graph),
            TieBreak::TaskId => vec![0; v],
        };
        let mut run = FlbRun {
            builder: ScheduleBuilder::new(graph, machine),
            tie_break,
            alive: vec![true; p],
            bl,
            missing_preds: (0..v).map(|i| graph.in_degree(TaskId(i))).collect(),
            lmt: vec![0; v],
            emt_on_ep: vec![0; v],
            ep: vec![usize::MAX; v],
            emt_ep: (0..p).map(|_| IndexedMinHeap::new(v)).collect(),
            lmt_ep: (0..p).map(|_| IndexedMinHeap::new(v)).collect(),
            non_ep: IndexedMinHeap::new(v),
            active_procs: IndexedMinHeap::new(p),
            all_procs: IndexedMinHeap::new(p),
            stats: RunStats::default(),
        };
        for t in graph.entry_tasks() {
            run.enqueue_ready(t);
        }
        run.stats.max_ready = run.ready_len();
        for q in 0..p {
            run.all_procs.insert(q, 0);
        }
        run
    }

    /// Warm restart over a pre-loaded partial schedule — the entry point of
    /// online repair (see `flb_core::repair`). `builder` may already hold
    /// placements (e.g. zero-cost pseudo-entries pinned where executed
    /// outputs materialised) and raised `PRT` floors
    /// ([`ScheduleBuilder::advance_prt`]); `alive[q] == false` masks
    /// processor `q` out of every candidate list, so the run never places a
    /// task on it. Tasks whose unplaced-predecessor count is already zero
    /// are enqueued immediately; the rest become ready as usual.
    ///
    /// With an empty builder and all processors alive this is exactly
    /// [`FlbRun::new`].
    ///
    /// # Panics
    ///
    /// Panics when no processor is alive or `alive.len()` disagrees with
    /// the machine.
    #[must_use]
    pub fn warm(builder: ScheduleBuilder<'g>, tie_break: TieBreak, alive: Vec<bool>) -> Self {
        let graph = builder.graph();
        let v = graph.num_tasks();
        let p = builder.num_procs();
        assert_eq!(alive.len(), p, "alive mask does not match the machine");
        assert!(
            alive.iter().any(|&a| a),
            "warm restart needs a surviving processor"
        );
        let bl = match tie_break {
            TieBreak::BottomLevel => bottom_levels(graph),
            TieBreak::TaskId => vec![0; v],
        };
        let missing_preds = (0..v)
            .map(|i| {
                graph
                    .preds(TaskId(i))
                    .iter()
                    .filter(|&&(q, _)| !builder.is_placed(q))
                    .count()
            })
            .collect();
        let mut run = FlbRun {
            builder,
            tie_break,
            alive,
            bl,
            missing_preds,
            lmt: vec![0; v],
            emt_on_ep: vec![0; v],
            ep: vec![usize::MAX; v],
            emt_ep: (0..p).map(|_| IndexedMinHeap::new(v)).collect(),
            lmt_ep: (0..p).map(|_| IndexedMinHeap::new(v)).collect(),
            non_ep: IndexedMinHeap::new(v),
            active_procs: IndexedMinHeap::new(p),
            all_procs: IndexedMinHeap::new(p),
            stats: RunStats::default(),
        };
        for q in 0..p {
            if run.alive[q] {
                run.all_procs.insert(q, run.builder.prt(ProcId(q)));
            }
        }
        for i in 0..v {
            let t = TaskId(i);
            if !run.builder.is_placed(t) && run.missing_preds[i] == 0 {
                run.enqueue_ready(t);
            }
        }
        run.stats.max_ready = run.ready_len();
        run
    }

    /// Counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> RunStats {
        self.stats
    }

    /// Current ready-set size (all lists).
    fn ready_len(&self) -> usize {
        self.non_ep.len() + self.emt_ep.iter().map(IndexedMinHeap::len).sum::<usize>()
    }

    /// The tie-break rule this run uses.
    #[must_use]
    pub fn tie_break(&self) -> TieBreak {
        self.tie_break
    }

    /// Per-processor eligibility mask (all true for cold starts).
    #[must_use]
    pub fn alive(&self) -> &[bool] {
        &self.alive
    }

    fn task_key(&self, time: Time, t: TaskId) -> TaskKey {
        (time, Reverse(self.bl[t.0]))
    }

    /// The underlying partial schedule (read-only).
    #[must_use]
    pub fn builder(&self) -> &ScheduleBuilder<'g> {
        &self.builder
    }

    /// Currently ready, unscheduled tasks (across all three lists), in
    /// ascending id order. `O(W)`; intended for tests and tracing.
    #[must_use]
    pub fn ready_tasks(&self) -> Vec<TaskId> {
        let mut out = Vec::new();
        self.ready_tasks_into(&mut out);
        out
    }

    /// [`ready_tasks`](Self::ready_tasks) into a caller-provided buffer —
    /// the allocation-free variant for per-step observation loops (the
    /// Theorem 3 oracle calls this once per scheduling decision).
    pub fn ready_tasks_into(&self, out: &mut Vec<TaskId>) {
        out.clear();
        out.extend(self.non_ep.iter().map(|(id, _)| TaskId(id)));
        for h in &self.emt_ep {
            out.extend(h.iter().map(|(id, _)| TaskId(id)));
        }
        out.sort_unstable();
    }

    /// EP-type tasks enabled by `p`, sorted ascending by `EMT(t, EP(t))`
    /// (the order of the paper's `EMT_EP_task_l`). For tracing.
    #[must_use]
    pub fn ep_tasks_of(&self, p: ProcId) -> Vec<TaskId> {
        let mut out = Vec::new();
        self.ep_tasks_of_into(p, &mut out);
        out
    }

    /// [`ep_tasks_of`](Self::ep_tasks_of) into a caller-provided buffer.
    /// Unlike the owning variant's old implementation this never clones
    /// the heap: entries are copied and sorted in place by the heap key
    /// (then id, matching the heap's own tie-break).
    pub fn ep_tasks_of_into(&self, p: ProcId, out: &mut Vec<TaskId>) {
        let h = &self.emt_ep[p.0];
        out.clear();
        out.extend(h.iter().map(|(id, _)| TaskId(id)));
        out.sort_unstable_by_key(|t| (*h.key(t.0).expect("listed id is present"), t.0));
    }

    /// Non-EP-type ready tasks sorted ascending by `LMT(t)`. For tracing.
    #[must_use]
    pub fn non_ep_tasks(&self) -> Vec<TaskId> {
        let mut out = Vec::new();
        self.non_ep_tasks_into(&mut out);
        out
    }

    /// [`non_ep_tasks`](Self::non_ep_tasks) into a caller-provided buffer
    /// (no heap clone).
    pub fn non_ep_tasks_into(&self, out: &mut Vec<TaskId>) {
        out.clear();
        out.extend(self.non_ep.iter().map(|(id, _)| TaskId(id)));
        out.sort_unstable_by_key(|t| (*self.non_ep.key(t.0).expect("listed id is present"), t.0));
    }

    /// `LMT(t)` of a ready task.
    #[must_use]
    pub fn lmt_of(&self, t: TaskId) -> Time {
        self.lmt[t.0]
    }

    /// `EMT(t, EP(t))` of a ready task (0 for entry tasks).
    #[must_use]
    pub fn emt_on_ep_of(&self, t: TaskId) -> Time {
        self.emt_on_ep[t.0]
    }

    /// Static bottom level of a task.
    #[must_use]
    pub fn bottom_level_of(&self, t: TaskId) -> Time {
        self.bl[t.0]
    }

    /// The paper's `ScheduleTask` + update procedures: selects between the
    /// two candidate pairs, schedules the winner, maintains all lists, and
    /// promotes newly ready tasks. Returns `None` once every task is placed.
    pub fn step(&mut self) -> Option<Step> {
        if self.builder.is_complete() {
            return None;
        }

        // Candidate (a): EP-type task with minimum EST on its enabling
        // processor — the head of the head-of-active-processors' EMT list.
        let ep_pair = self.active_procs.peek().map(|(p, &est)| {
            let (t, _) = self.emt_ep[p]
                .peek()
                .expect("active processor has EP tasks");
            debug_assert_eq!(
                est,
                self.emt_on_ep[t].max(self.builder.prt(ProcId(p))),
                "stale active-processor key"
            );
            (TaskId(t), ProcId(p), est)
        });

        // Candidate (b): non-EP-type task with minimum LMT on the processor
        // becoming idle the earliest.
        let non_ep_pair = self.non_ep.peek().map(|(t, &(lmt, _))| {
            let (p, &prt) = self.all_procs.peek().expect("machine has processors");
            (TaskId(t), ProcId(p), lmt.max(prt))
        });

        // The paper's comparison: the EP pair wins only with a strictly
        // smaller EST (ties favour the non-EP pair, whose communication is
        // already overlapped with computation).
        let (task, proc, start, from_ep_list) = match (ep_pair, non_ep_pair) {
            (Some((t1, p1, e1)), Some((_, _, e2))) if e1 < e2 => (t1, p1, e1, true),
            (_, Some((t2, p2, e2))) => (t2, p2, e2, false),
            (Some((t1, p1, e1)), None) => (t1, p1, e1, true),
            (None, None) => unreachable!("unscheduled tasks but no ready task"),
        };

        // Remove the winner from its lists.
        if from_ep_list {
            let removed = self.emt_ep[proc.0].remove(task.0);
            debug_assert!(removed.is_some());
            let removed = self.lmt_ep[proc.0].remove(task.0);
            debug_assert!(removed.is_some());
            self.stats.ep_selections += 1;
        } else {
            let removed = self.non_ep.remove(task.0);
            debug_assert!(removed.is_some());
            self.stats.non_ep_selections += 1;
        }

        self.builder.place(task, proc, start);
        let finish = self.builder.ft(task);

        // PRT(proc) changed: update the global processor list, demote EP
        // tasks that stopped satisfying the EP condition, and refresh the
        // active-processor entry.
        self.all_procs.update(proc.0, self.builder.prt(proc));
        self.update_task_lists(proc);
        self.update_proc_lists(proc);
        self.update_ready_tasks(task);

        Some(Step {
            task,
            proc,
            start,
            finish,
            from_ep_list,
        })
    }

    /// Paper's `UpdateTaskLists`: after `PRT(p)` grew, EP-type tasks whose
    /// `LMT < PRT(p)` are no longer EP-type; move them (in LMT order) to the
    /// non-EP list.
    fn update_task_lists(&mut self, p: ProcId) {
        let prt = self.builder.prt(p);
        while let Some((t, &(lmt, _))) = self.lmt_ep[p.0].peek() {
            if lmt >= prt {
                break;
            }
            self.lmt_ep[p.0].pop();
            let removed = self.emt_ep[p.0].remove(t);
            debug_assert!(removed.is_some());
            let key = self.task_key(lmt, TaskId(t));
            self.non_ep.insert(t, key);
            self.stats.demotions += 1;
        }
    }

    /// Paper's `UpdateProcLists`: recompute `p`'s priority in the active
    /// processor list (minimum EST of the EP tasks it enables), or drop it
    /// when it no longer enables any EP task.
    fn update_proc_lists(&mut self, p: ProcId) {
        match self.emt_ep[p.0].peek() {
            None => {
                self.active_procs.remove(p.0);
            }
            Some((t, _)) => {
                let est = self.emt_on_ep[t].max(self.builder.prt(p));
                self.active_procs.insert_or_update(p.0, est);
            }
        }
    }

    /// Paper's `UpdateReadyTasks`: successors of the scheduled task that
    /// became ready are classified as EP / non-EP and enqueued; enabling
    /// processors (possibly newly active) get their priorities refreshed.
    fn update_ready_tasks(&mut self, scheduled: TaskId) {
        let graph = self.builder.graph();
        for &(s, _) in graph.succs(scheduled) {
            self.missing_preds[s.0] -= 1;
            if self.missing_preds[s.0] > 0 {
                continue;
            }
            self.enqueue_ready(s);
        }
        self.stats.max_ready = self.stats.max_ready.max(self.ready_len());
    }

    /// Classifies a ready task as EP / non-EP type and enqueues it — shared
    /// by the cold start (entry tasks), the warm start, and
    /// `UpdateReadyTasks`. LMT, EP and EMT-on-EP are computed once: the
    /// task's predecessors are all placed and will never move. A task whose
    /// enabling processor has failed goes to the non-EP list — its last
    /// message comes from a checkpointed output, which no surviving
    /// processor can overlap away, so the EP condition is unsatisfiable.
    fn enqueue_ready(&mut self, s: TaskId) {
        let lmt = self.builder.lmt(s);
        self.lmt[s.0] = lmt;
        match self.builder.ep(s) {
            Some(ep) if self.alive[ep.0] => {
                let emt = self.builder.emt(s, ep);
                self.ep[s.0] = ep.0;
                self.emt_on_ep[s.0] = emt;
                if lmt < self.builder.prt(ep) {
                    let key = self.task_key(lmt, s);
                    self.non_ep.insert(s.0, key);
                    self.stats.non_ep_promotions += 1;
                } else {
                    let emt_key = self.task_key(emt, s);
                    let lmt_key = self.task_key(lmt, s);
                    self.emt_ep[ep.0].insert(s.0, emt_key);
                    self.lmt_ep[ep.0].insert(s.0, lmt_key);
                    self.update_proc_lists(ep);
                    self.stats.ep_promotions += 1;
                }
            }
            // Entry task (no predecessors) or dead enabling processor.
            _ => {
                let key = self.task_key(lmt, s);
                self.non_ep.insert(s.0, key);
                self.stats.non_ep_promotions += 1;
            }
        }
    }

    /// Finishes the run.
    ///
    /// # Panics
    ///
    /// Panics if tasks remain unscheduled (call [`step`](Self::step) until
    /// it returns `None`).
    #[must_use]
    pub fn finish(self) -> Schedule {
        self.builder.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Flb;
    use flb_graph::paper::fig1;
    use flb_graph::TaskGraphBuilder;
    use flb_sched::validate::validate;
    use flb_sched::Scheduler;

    /// The full Table 1 check: every iteration's scheduling decision, start
    /// and finish time must match the paper's execution trace.
    #[test]
    fn fig1_reproduces_table1_decisions() {
        let g = fig1();
        let m = Machine::new(2);
        let mut run = FlbRun::new(&g, &m, TieBreak::BottomLevel);
        let expected = [
            // (task, proc, start, finish) rows of Table 1.
            (0, 0, 0, 2),
            (3, 0, 2, 5),
            (1, 1, 3, 5),
            (2, 0, 5, 7),
            (4, 1, 5, 8),
            (5, 0, 7, 10),
            (6, 1, 8, 10),
            (7, 0, 12, 14),
        ];
        for (i, &(t, p, st, ft)) in expected.iter().enumerate() {
            let step = run.step().expect("more steps expected");
            assert_eq!(
                (step.task.0, step.proc.0, step.start, step.finish),
                (t, p, st, ft),
                "iteration {i} diverged from Table 1"
            );
        }
        assert!(run.step().is_none());
        let s = run.finish();
        assert_eq!(s.makespan(), 14);
        assert_eq!(validate(&g, &s), Ok(()));
    }

    /// Table 1's list contents at the second iteration: the three EP tasks
    /// enabled by p0 sorted t3, t1, t2 (equal EMT, bottom-level order).
    #[test]
    fn fig1_ep_list_order_after_first_step() {
        let g = fig1();
        let m = Machine::new(2);
        let mut run = FlbRun::new(&g, &m, TieBreak::BottomLevel);
        run.step(); // schedules t0 on p0
        assert_eq!(
            run.ep_tasks_of(ProcId(0)),
            vec![TaskId(3), TaskId(1), TaskId(2)]
        );
        assert!(run.ep_tasks_of(ProcId(1)).is_empty());
        assert!(run.non_ep_tasks().is_empty());
        assert_eq!(run.lmt_of(TaskId(1)), 3);
        assert_eq!(run.lmt_of(TaskId(2)), 6);
        assert_eq!(run.lmt_of(TaskId(3)), 3);
    }

    /// After t3 is scheduled on p0 (PRT = 5), t1 (LMT 3) must demote to the
    /// non-EP list while t2 (LMT 6) stays EP — Table 1, third row.
    #[test]
    fn fig1_demotion_to_non_ep() {
        let g = fig1();
        let m = Machine::new(2);
        let mut run = FlbRun::new(&g, &m, TieBreak::BottomLevel);
        run.step(); // t0
        run.step(); // t3
        assert_eq!(run.ep_tasks_of(ProcId(0)), vec![TaskId(2)]);
        assert_eq!(run.non_ep_tasks(), vec![TaskId(1)]);
    }

    #[test]
    fn single_processor_serialises_in_priority_order() {
        let g = fig1();
        let s = Flb::default().schedule(&g, &Machine::new(1));
        assert_eq!(validate(&g, &s), Ok(()));
        // On one processor there is no communication: makespan = total comp.
        assert_eq!(s.makespan(), g.total_comp());
    }

    #[test]
    fn more_processors_than_width_change_nothing_much() {
        let g = fig1();
        let s2 = Flb::default().schedule(&g, &Machine::new(2));
        let s8 = Flb::default().schedule(&g, &Machine::new(8));
        assert_eq!(validate(&g, &s8), Ok(()));
        // Extra processors can help or be ignored, but never break validity;
        // with width 3, 8 processors must not be worse than... the 2-proc
        // schedule by more than the extra communication they can introduce.
        assert!(s8.makespan() <= s2.makespan() + g.total_comm());
    }

    #[test]
    fn entry_task_tie_break_prefers_larger_bottom_level() {
        // Two entry chains of different lengths: the longer chain's head has
        // the larger bottom level and must be scheduled first.
        let mut b = TaskGraphBuilder::new();
        let short = b.add_task(1);
        let long0 = b.add_task(1);
        let long1 = b.add_task(5);
        b.add_edge(long0, long1, 1).unwrap();
        let g = b.build().unwrap();
        let m = Machine::new(1);
        let mut run = FlbRun::new(&g, &m, TieBreak::BottomLevel);
        let first = run.step().unwrap();
        assert_eq!(first.task, long0);
        let _ = short;
    }

    #[test]
    fn fifo_tie_break_prefers_smaller_id() {
        let mut b = TaskGraphBuilder::new();
        let short = b.add_task(1);
        let long0 = b.add_task(1);
        let long1 = b.add_task(5);
        b.add_edge(long0, long1, 1).unwrap();
        let g = b.build().unwrap();
        let m = Machine::new(1);
        let mut run = FlbRun::new(&g, &m, TieBreak::TaskId);
        let first = run.step().unwrap();
        assert_eq!(first.task, short);
    }

    #[test]
    fn flb_balances_independent_tasks() {
        let g = flb_graph::gen::independent(12);
        let m = Machine::new(4);
        let s = Flb::default().schedule(&g, &m);
        for p in 0..4 {
            assert_eq!(s.tasks_on(ProcId(p)).len(), 3);
        }
        assert_eq!(s.makespan(), 3);
    }

    #[test]
    fn demotion_cascade_in_one_update() {
        // Processor p0 enables three EP tasks with staggered LMTs; one long
        // task on p0 pushes PRT past two of them at once: both must demote
        // in the same UpdateTaskLists pass, the third stays EP.
        let mut b = TaskGraphBuilder::new();
        let root = b.add_task(1);
        let blocker = b.add_task(50); // scheduled on p0 right after root
        let e1 = b.add_task(1);
        let e2 = b.add_task(1);
        let e3 = b.add_task(1);
        b.add_edge(root, blocker, 1).unwrap();
        b.add_edge(root, e1, 5).unwrap(); // LMT 6
        b.add_edge(root, e2, 9).unwrap(); // LMT 10
        b.add_edge(root, e3, 100).unwrap(); // LMT 101 (stays EP)
        let g = b.build().unwrap();
        let m = Machine::new(1); // single proc: everything EP on p0
        let mut run = FlbRun::new(&g, &m, TieBreak::BottomLevel);
        run.step(); // root [0-1]; e1/e2/e3 + blocker become ready, EP on p0
        assert_eq!(run.ep_tasks_of(ProcId(0)).len(), 4);
        run.step(); // blocker [1-51]: PRT 51 > LMT(e1), LMT(e2)
        let still_ep = run.ep_tasks_of(ProcId(0));
        assert!(still_ep.contains(&e3));
        assert!(!still_ep.contains(&e1) && !still_ep.contains(&e2));
        assert_eq!(run.non_ep_tasks(), vec![e1, e2]);
        assert_eq!(run.stats().demotions, 2);
        while run.step().is_some() {}
        assert_eq!(run.finish().makespan(), g.total_comp());
    }

    #[test]
    fn flb_on_related_machine_is_valid() {
        // FLB is speed-oblivious but must stay correct on related machines
        // (durations come from the shared builder).
        let g = flb_graph::gen::lu(6);
        let m = Machine::related(vec![1, 3, 3]);
        let s = Flb::default().schedule(&g, &m);
        assert_eq!(validate(&g, &s), Ok(()));
        assert!(s.makespan() >= flb_sched::bounds::makespan_lower_bound_on(&g, &m));
    }

    #[test]
    fn steps_cover_every_task_exactly_once() {
        let g = flb_graph::gen::lu(8);
        let m = Machine::new(3);
        let mut run = FlbRun::new(&g, &m, TieBreak::BottomLevel);
        let mut seen = vec![false; g.num_tasks()];
        while let Some(step) = run.step() {
            assert!(!seen[step.task.0], "task scheduled twice");
            seen[step.task.0] = true;
            assert_eq!(step.finish, step.start + g.comp(step.task));
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(validate(&g, &run.finish()), Ok(()));
    }

    #[test]
    fn stats_account_for_every_task() {
        let g = fig1();
        let m = Machine::new(2);
        let mut run = FlbRun::new(&g, &m, TieBreak::BottomLevel);
        while run.step().is_some() {}
        let st = run.stats();
        // Every task was selected exactly once, from one of the two lists.
        assert_eq!(st.ep_selections + st.non_ep_selections, g.num_tasks());
        // Every task entered the ready set exactly once.
        assert_eq!(st.ep_promotions + st.non_ep_promotions, g.num_tasks());
        // The Table 1 trace: t3, t1, t2 + t4, t5, t6, t7 enter as EP (7);
        // t0 enters as non-EP; t1, t5, t6 are demoted along the way.
        assert_eq!(st.non_ep_promotions, 1);
        assert_eq!(st.ep_promotions, 7);
        assert_eq!(st.demotions, 3);
        // Ready set peaks at {t1, t2, t3} = width 3.
        assert_eq!(st.max_ready, 3);
        // EP selections per Table 1: t3, t2, t4, t7 = 4.
        assert_eq!(st.ep_selections, 4);
        assert_eq!(st.list_insertions(), 8 + 3);
    }

    #[test]
    fn max_ready_is_bounded_by_width() {
        let g = flb_graph::gen::stencil(6, 5);
        let w = flb_graph::width::max_antichain(&g);
        let m = Machine::new(3);
        let mut run = FlbRun::new(&g, &m, TieBreak::BottomLevel);
        while run.step().is_some() {}
        assert!(run.stats().max_ready <= w);
    }

    #[test]
    fn ready_tasks_view_is_consistent() {
        let g = fig1();
        let m = Machine::new(2);
        let mut run = FlbRun::new(&g, &m, TieBreak::BottomLevel);
        assert_eq!(run.ready_tasks(), vec![TaskId(0)]);
        run.step();
        assert_eq!(run.ready_tasks(), vec![TaskId(1), TaskId(2), TaskId(3)]);
    }
}
