//! Brute-force earliest-start oracle (the ETF-style exhaustive scan).
//!
//! [`min_est`] computes, in `O(W · P · preds)`, the minimum estimated start
//! time over *all* ready task–processor pairs of a partial schedule. The
//! paper's Theorem 3 states FLB's two-pair comparison always achieves this
//! minimum; the test-suite asserts it on every step of every random graph
//! (experiment X1 in DESIGN.md).

use flb_graph::{TaskId, Time};
use flb_sched::{ProcId, ScheduleBuilder};

/// The minimum `EST(t, p)` over the given ready tasks and every processor,
/// together with one pair realising it (smallest task id, then smallest
/// processor id, among the minimisers). Returns `None` when `ready` is
/// empty.
#[must_use]
pub fn min_est(builder: &ScheduleBuilder<'_>, ready: &[TaskId]) -> Option<(TaskId, ProcId, Time)> {
    let mut best: Option<(Time, TaskId, ProcId)> = None;
    for &t in ready {
        for p in 0..builder.num_procs() {
            let p = ProcId(p);
            let est = builder.est(t, p);
            let cand = (est, t, p);
            if best.is_none_or(|b| cand < b) {
                best = Some(cand);
            }
        }
    }
    best.map(|(est, t, p)| (t, p, est))
}

#[cfg(test)]
mod tests {
    use super::*;
    use flb_graph::paper::fig1;
    use flb_sched::Machine;

    #[test]
    fn empty_ready_set_gives_none() {
        let g = fig1();
        let m = Machine::new(2);
        let b = ScheduleBuilder::new(&g, &m);
        assert_eq!(min_est(&b, &[]), None);
    }

    #[test]
    fn initial_state_picks_entry_task_at_zero() {
        let g = fig1();
        let m = Machine::new(2);
        let b = ScheduleBuilder::new(&g, &m);
        let (t, p, est) = min_est(&b, &[TaskId(0)]).unwrap();
        assert_eq!((t, p, est), (TaskId(0), ProcId(0), 0));
    }

    #[test]
    fn oracle_matches_paper_second_iteration() {
        // After t0 on p0: ready = {t1, t2, t3}; all can start at 2 on p0
        // (EMT 2 = PRT 2); on p1 their messages arrive at 3, 6, 3. The
        // minimum EST is 2.
        let g = fig1();
        let m = Machine::new(2);
        let mut b = ScheduleBuilder::new(&g, &m);
        b.place(TaskId(0), ProcId(0), 0);
        let (_, p, est) = min_est(&b, &[TaskId(1), TaskId(2), TaskId(3)]).unwrap();
        assert_eq!(est, 2);
        assert_eq!(p, ProcId(0));
    }
}
