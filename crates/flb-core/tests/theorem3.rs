//! Experiment X1: the paper's Theorem 3, checked empirically.
//!
//! At every iteration, the start time of the task FLB schedules must equal
//! the minimum `EST(t, p)` over *all* ready tasks and *all* processors — the
//! quantity ETF computes with an exhaustive scan. We verify this on every
//! step of every graph family at several machine sizes.

use flb_core::{oracle, FlbRun, TieBreak};
use flb_graph::costs::{CostModel, Dist};
use flb_graph::{gen, TaskGraph};
use flb_sched::validate::validate;
use flb_sched::Machine;
use proptest::prelude::*;

fn arb_weighted_graph() -> impl Strategy<Value = TaskGraph> {
    let topo = prop_oneof![
        (2usize..14).prop_map(gen::lu),
        (1usize..7).prop_map(gen::laplace),
        (1usize..6, 1usize..6).prop_map(|(p, s)| gen::stencil(p, s)),
        (1u32..5).prop_map(gen::fft),
        (1usize..7, 1usize..4).prop_map(|(w, s)| gen::fork_join(w, s)),
        (1usize..10).prop_map(gen::chain),
        (1usize..10).prop_map(gen::independent),
        (8usize..40, 2usize..5, any::<u64>()).prop_map(|(v, l, seed)| gen::random_layered(
            &gen::RandomLayeredSpec {
                tasks: v,
                layers: l,
                edge_prob: 0.35,
                max_skip: 2
            },
            seed
        )),
    ];
    (
        topo,
        prop_oneof![Just(0.2), Just(1.0), Just(5.0)],
        any::<u64>(),
    )
        .prop_map(|(t, ccr, seed)| {
            CostModel {
                comp: Dist::UniformMean(10),
                ccr,
            }
            .apply(&t, seed)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every FLB step achieves the oracle's global minimum EST, for both
    /// tie-break rules, across machine sizes.
    #[test]
    fn flb_selects_globally_earliest_start(
        g in arb_weighted_graph(),
        procs in 1usize..9,
        tie in prop_oneof![Just(TieBreak::BottomLevel), Just(TieBreak::TaskId)],
    ) {
        let m = Machine::new(procs);
        let mut run = FlbRun::new(&g, &m, tie);
        let mut ready = Vec::new();
        loop {
            run.ready_tasks_into(&mut ready);
            let oracle_min = oracle::min_est(run.builder(), &ready);
            match run.step() {
                Some(step) => {
                    let (_, _, est) = oracle_min.expect("ready set non-empty while stepping");
                    prop_assert_eq!(
                        step.start, est,
                        "FLB started {} at {}, oracle found EST {}",
                        step.task, step.start, est
                    );
                }
                None => {
                    prop_assert!(oracle_min.is_none());
                    break;
                }
            }
        }
        let s = run.finish();
        prop_assert_eq!(validate(&g, &s), Ok(()));
    }

    /// FLB schedules are always feasible and bounded: makespan at least the
    /// computation-only critical path, at most the full serialisation.
    #[test]
    fn flb_schedules_are_feasible_and_bounded(
        g in arb_weighted_graph(),
        procs in 1usize..9,
    ) {
        use flb_sched::Scheduler;
        let s = flb_core::Flb::default().schedule(&g, &Machine::new(procs));
        prop_assert_eq!(validate(&g, &s), Ok(()));
        let span = s.makespan();
        prop_assert!(span >= flb_graph::levels::critical_path_comp_only(&g));
        prop_assert!(span <= g.total_comp() + g.total_comm());
        // On one processor FLB never idles: makespan is exactly T_seq.
        if procs == 1 {
            prop_assert_eq!(span, g.total_comp());
        }
    }
}
