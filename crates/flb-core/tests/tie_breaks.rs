//! Pins the paper's tie-break rules, which the rest of the suite only
//! implies:
//!
//! 1. When the EP pair and the non-EP pair achieve the *same* EST, the
//!    non-EP pair wins (its communication is already overlapped with
//!    computation, so keeping the EP slot free can only help later tasks).
//! 2. Within each ready list, tasks with equal time keys are ordered by
//!    *descending* static bottom level — "the task with the longest path to
//!    any exit tasks" goes first — with ascending task id as the final
//!    tie-break. `TieBreak::TaskId` (ablation A2) collapses rule 2 to pure
//!    id order.

use flb_core::{FlbRun, TieBreak};
use flb_graph::{TaskGraph, TaskGraphBuilder, TaskId};
use flb_sched::validate::validate;
use flb_sched::Machine;

/// One processor; `r` (comp 2) with child `c` (comp 1, comm 1), and an
/// independent entry `x` (comp 1). After `r` runs over `[0, 2]`:
///
/// * `c` is EP-type on p0 (its input is local there): `EMT = 2 < LMT = 3`,
///   so the EP pair is `(c, p0)` with `EST = max(2, PRT=2) = 2`.
/// * `x` is non-EP with `LMT = 0`, so the non-EP pair is `(x, p0)` with
///   `EST = max(0, PRT=2) = 2`.
///
/// Equal ESTs — the paper's rule selects the non-EP pair.
fn ep_vs_non_ep_tie_graph() -> (TaskGraph, TaskId, TaskId, TaskId) {
    let mut b = TaskGraphBuilder::named("ep-vs-non-ep-tie");
    let r = b.add_task(2);
    let x = b.add_task(1);
    let c = b.add_task(1);
    b.add_edge(r, c, 1).unwrap();
    (b.build().unwrap(), r, x, c)
}

#[test]
fn non_ep_pair_preferred_on_equal_est() {
    let (g, r, x, c) = ep_vs_non_ep_tie_graph();
    let m = Machine::new(1);
    let mut run = FlbRun::new(&g, &m, TieBreak::BottomLevel);

    // Step 1: both entry tasks are non-EP; r has the larger bottom level.
    let s1 = run.step().unwrap();
    assert_eq!((s1.task, s1.start, s1.from_ep_list), (r, 0, false));

    // The tie is now set up exactly as advertised.
    let p0 = flb_sched::ProcId(0);
    assert_eq!(run.ep_tasks_of(p0), vec![c]);
    assert_eq!(run.non_ep_tasks(), vec![x]);
    assert_eq!(run.emt_on_ep_of(c), 2);
    assert_eq!(run.lmt_of(c), 3);
    assert_eq!(run.lmt_of(x), 0);

    // Step 2: EST(c, p0) == EST(x, p0) == 2 — the non-EP pair must win.
    let s2 = run.step().unwrap();
    assert_eq!(
        (s2.task, s2.start, s2.from_ep_list),
        (x, 2, false),
        "equal-EST tie must go to the non-EP pair"
    );

    // Step 3: c is the only ready task, selected from the EP list.
    let s3 = run.step().unwrap();
    assert_eq!((s3.task, s3.start, s3.from_ep_list), (c, 3, true));
    assert!(run.step().is_none());

    let stats = run.stats();
    assert_eq!(stats.ep_selections, 1);
    assert_eq!(stats.non_ep_selections, 2);
    let sched = run.finish();
    assert_eq!(validate(&g, &sched), Ok(()));
    assert_eq!(sched.makespan(), 4);
}

/// Two entry tasks with equal `LMT = 0`: `x` (id 0, bottom level 1) and
/// `r` (id 1, bottom level 2+1+1 = 4 through its child). The paper's rule
/// must pick `r` first despite its larger id; the ablation picks `x`.
#[test]
fn static_bottom_level_orders_the_non_ep_list() {
    let mut b = TaskGraphBuilder::named("non-ep-bl-order");
    let x = b.add_task(1);
    let r = b.add_task(2);
    let c = b.add_task(1);
    b.add_edge(r, c, 1).unwrap();
    let g = b.build().unwrap();
    let m = Machine::new(1);

    let mut paper = FlbRun::new(&g, &m, TieBreak::BottomLevel);
    assert_eq!(paper.bottom_level_of(r), 4);
    assert_eq!(paper.bottom_level_of(x), 1);
    // List order is ascending by (LMT, reversed bottom level, id).
    assert_eq!(paper.non_ep_tasks(), vec![r, x]);
    assert_eq!(paper.step().unwrap().task, r, "longest path to exit first");

    let mut ablation = FlbRun::new(&g, &m, TieBreak::TaskId);
    assert_eq!(ablation.non_ep_tasks(), vec![x, r]);
    assert_eq!(
        ablation.step().unwrap().task,
        x,
        "FIFO ablation is id order"
    );
}

/// Same pin for the EP lists: after parent `a` runs, children `c1` (id 1,
/// bottom level 1) and `c2` (id 2, bottom level 1+1+5 = 7 through a
/// grandchild) are both EP-type on p0 with equal `EMT = 2`. The paper's
/// order puts `c2` first; the id ablation puts `c1` first.
#[test]
fn static_bottom_level_orders_the_ep_list() {
    let mut b = TaskGraphBuilder::named("ep-bl-order");
    let a = b.add_task(2);
    let c1 = b.add_task(1);
    let c2 = b.add_task(1);
    let g2 = b.add_task(5);
    b.add_edge(a, c1, 1).unwrap();
    b.add_edge(a, c2, 1).unwrap();
    b.add_edge(c2, g2, 1).unwrap();
    let g = b.build().unwrap();
    let m = Machine::new(1);
    let p0 = flb_sched::ProcId(0);

    let mut paper = FlbRun::new(&g, &m, TieBreak::BottomLevel);
    assert_eq!(paper.step().unwrap().task, a);
    assert_eq!(paper.emt_on_ep_of(c1), 2);
    assert_eq!(paper.emt_on_ep_of(c2), 2);
    assert_eq!(paper.ep_tasks_of(p0), vec![c2, c1]);
    let s = paper.step().unwrap();
    assert_eq!((s.task, s.from_ep_list), (c2, true));

    let mut ablation = FlbRun::new(&g, &m, TieBreak::TaskId);
    assert_eq!(ablation.step().unwrap().task, a);
    assert_eq!(ablation.ep_tasks_of(p0), vec![c1, c2]);
    assert_eq!(ablation.step().unwrap().task, c1);
}
