//! End-to-end check of the streaming path: graphs built by the flat
//! generators (identity topological order, emission-ordered CSR) scheduled
//! by the kernel must match the reference FLB run on the converted
//! `TaskGraph` exactly — placements, start times and makespan.

use flb_core::{FlbRun, TieBreak};
use flb_graph::costs::{CostModel, Dist};
use flb_graph::gen::RandomLayeredSpec;
use flb_kernel::{FlatGraph, KernelRun};
use flb_sched::{Machine, ProcId};
use flb_workloads::million::{cholesky_flat, lu_flat, random_layered_flat};

fn assert_kernel_matches_reference(flat: &FlatGraph, machine: &Machine) {
    let slow: Vec<_> = (0..machine.num_procs())
        .map(|p| machine.slowdown(ProcId(p)))
        .collect();
    let mut kernel = KernelRun::new(flat, &slow, TieBreak::BottomLevel);
    kernel.run();

    let g = flat.to_task_graph();
    let mut reference = FlbRun::new(&g, machine, TieBreak::BottomLevel);
    while reference.step().is_some() {}
    let schedule = reference.finish();

    for t in 0..flat.num_tasks() {
        let p = schedule.placement(flb_graph::TaskId(t));
        assert_eq!(kernel.procs()[t] as usize, p.proc.0, "task {t} processor");
        assert_eq!(kernel.starts()[t], p.start, "task {t} start");
    }
    assert_eq!(kernel.makespan(), schedule.makespan());
}

#[test]
fn lu_flat_schedules_match_reference() {
    let model = CostModel {
        comp: Dist::UniformMean(100),
        ccr: 5.0,
    };
    let flat = lu_flat(25, &model, 1999);
    assert_kernel_matches_reference(&flat, &Machine::new(8));
}

#[test]
fn cholesky_flat_schedules_match_reference_on_related_machine() {
    let model = CostModel {
        comp: Dist::UniformMean(100),
        ccr: 0.2,
    };
    let flat = cholesky_flat(12, &model, 7);
    assert_kernel_matches_reference(&flat, &Machine::related(vec![1, 2, 2, 3]));
}

#[test]
fn random_layered_flat_schedules_match_reference() {
    let model = CostModel {
        comp: Dist::Exponential(50),
        ccr: 1.0,
    };
    let spec = RandomLayeredSpec {
        tasks: 400,
        layers: 12,
        edge_prob: 0.1,
        max_skip: 2,
    };
    let flat = random_layered_flat(&spec, &model, 3);
    assert_kernel_matches_reference(&flat, &Machine::new(4));
}
