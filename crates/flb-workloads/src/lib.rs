//! Workload suites and summary statistics for the paper's experiments.
//!
//! The evaluation methodology of §6: task graphs for LU decomposition, a
//! Laplace solver and a stencil kernel (plus FFT, discussed in the text),
//! each sized to about `V = 2000` tasks; per problem, graph granularity is
//! varied through `CCR ∈ {0.2, 5.0}`; per configuration, five instances
//! with random execution times and communication delays are generated.
//!
//! [`SuiteSpec::paper`] reproduces exactly that suite; [`SuiteSpec::small`]
//! is a scaled-down variant for tests and quick runs. [`stats`] holds the
//! summary statistics the harness reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod million;
pub mod stats;

use flb_graph::costs::{CostModel, Dist};
use flb_graph::gen::Family;
use flb_graph::TaskGraph;

/// One experiment workload: a weighted task-graph instance plus the
/// parameters that produced it.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Problem family (LU, Laplace, Stencil, FFT).
    pub family: Family,
    /// Target communication-to-computation ratio.
    pub ccr: f64,
    /// RNG seed of this instance.
    pub seed: u64,
    /// The weighted task graph.
    pub graph: TaskGraph,
}

impl Workload {
    /// Short label, e.g. `LU/ccr0.2/s3`.
    #[must_use]
    pub fn label(&self) -> String {
        format!("{}/ccr{}/s{}", self.family.name(), self.ccr, self.seed)
    }
}

/// Specification of a workload suite.
#[derive(Clone, Debug)]
pub struct SuiteSpec {
    /// Problem families to include.
    pub families: Vec<Family>,
    /// CCR values to sweep.
    pub ccrs: Vec<f64>,
    /// Random instances per (family, CCR) configuration.
    pub instances: usize,
    /// Approximate number of tasks per graph.
    pub target_tasks: usize,
    /// Computation-cost distribution (communication is derived per CCR).
    pub comp_dist: Dist,
    /// Base RNG seed; instance `i` of a configuration uses `base + i`,
    /// offset per family/CCR so no two instances share a stream.
    pub base_seed: u64,
}

impl SuiteSpec {
    /// The paper's suite: LU/Laplace/Stencil (+FFT), `V ≈ 2000`,
    /// `CCR ∈ {0.2, 5.0}`, 5 instances each.
    #[must_use]
    pub fn paper() -> Self {
        SuiteSpec {
            families: Family::ALL.to_vec(),
            ccrs: vec![0.2, 5.0],
            instances: 5,
            target_tasks: 2000,
            comp_dist: Dist::UniformMean(100),
            base_seed: 1999, // the paper's year; any fixed seed works
        }
    }

    /// The three families of Figs. 2 and 4 only (no FFT).
    #[must_use]
    pub fn paper_fig4() -> Self {
        let mut s = Self::paper();
        s.families = vec![Family::Lu, Family::Stencil, Family::Laplace];
        s
    }

    /// A scaled-down suite (~200-task graphs, 2 instances) for tests.
    #[must_use]
    pub fn small() -> Self {
        SuiteSpec {
            families: Family::ALL.to_vec(),
            ccrs: vec![0.2, 5.0],
            instances: 2,
            target_tasks: 200,
            comp_dist: Dist::UniformMean(100),
            base_seed: 7,
        }
    }

    /// Generates every workload of the suite. Topologies are built once per
    /// family and re-weighted per (CCR, instance); fully deterministic in
    /// `base_seed`.
    #[must_use]
    pub fn generate(&self) -> Vec<Workload> {
        let mut out = Vec::new();
        for (fi, &family) in self.families.iter().enumerate() {
            let topology = family.topology(self.target_tasks);
            for (ci, &ccr) in self.ccrs.iter().enumerate() {
                let model = CostModel {
                    comp: self.comp_dist,
                    ccr,
                };
                for i in 0..self.instances {
                    let seed = self
                        .base_seed
                        .wrapping_add((fi as u64) << 32)
                        .wrapping_add((ci as u64) << 16)
                        .wrapping_add(i as u64);
                    out.push(Workload {
                        family,
                        ccr,
                        seed,
                        graph: model.apply(&topology, seed),
                    });
                }
            }
        }
        out
    }

    /// Number of workloads [`generate`](Self::generate) will produce.
    #[must_use]
    pub fn len(&self) -> usize {
        self.families.len() * self.ccrs.len() * self.instances
    }

    /// Whether the suite is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The processor counts of the paper's Figs. 2 and 4.
pub const PAPER_PROC_COUNTS: [usize; 5] = [2, 4, 8, 16, 32];

/// The processor counts of the paper's Fig. 3 (speedup), including `P = 1`.
pub const PAPER_SPEEDUP_PROC_COUNTS: [usize; 6] = [1, 2, 4, 8, 16, 32];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_suite_shape() {
        let spec = SuiteSpec::paper();
        assert_eq!(spec.len(), 4 * 2 * 5);
        // Not generating the full 2000-task suite here (slow in debug);
        // shape and determinism are covered with the small suite.
    }

    #[test]
    fn small_suite_generates_deterministically() {
        let spec = SuiteSpec::small();
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a.len(), spec.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.label(), y.label());
            assert_eq!(x.graph.total_comp(), y.graph.total_comp());
            assert_eq!(x.graph.total_comm(), y.graph.total_comm());
        }
    }

    #[test]
    fn suite_hits_target_sizes_and_ccrs() {
        let spec = SuiteSpec::small();
        for w in spec.generate() {
            let v = w.graph.num_tasks();
            assert!(
                (spec.target_tasks / 2..=spec.target_tasks * 2).contains(&v),
                "{}: {v} tasks",
                w.label()
            );
            let measured = w.graph.ccr();
            assert!(
                (measured - w.ccr).abs() / w.ccr < 0.25,
                "{}: measured CCR {measured}",
                w.label()
            );
        }
    }

    #[test]
    fn instances_differ_within_configuration() {
        let spec = SuiteSpec::small();
        let ws = spec.generate();
        // First two workloads are the same family+CCR, different seeds.
        assert_eq!(ws[0].family, ws[1].family);
        assert_ne!(ws[0].graph.total_comp(), ws[1].graph.total_comp());
    }

    #[test]
    fn labels_are_unique() {
        let ws = SuiteSpec::small().generate();
        let mut labels: Vec<_> = ws.iter().map(Workload::label).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), ws.len());
    }
}
