//! Summary statistics used by the experiment harness.

/// Arithmetic mean; 0 for an empty slice.
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation (n−1 denominator); 0 for fewer than 2 points.
#[must_use]
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Geometric mean; 0 for an empty slice.
///
/// NSL ratios are averaged geometrically in the summary blocks so that
/// "alg A is 1.2× of B" and "B is 1/1.2 of A" aggregate symmetrically.
#[must_use]
pub fn geo_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// A five-number summary of a sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Stats {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Stats {
    /// Summarises a sample (`n = 0` gives all-zero stats).
    #[must_use]
    pub fn from(xs: &[f64]) -> Self {
        Stats {
            n: xs.len(),
            mean: mean(xs),
            std_dev: std_dev(xs),
            min: xs.iter().copied().fold(f64::INFINITY, f64::min),
            max: xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        // Sample std of this classic set is ~2.138.
        assert!((std_dev(&xs) - 2.13809).abs() < 1e-4);
    }

    #[test]
    fn degenerate_cases() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(std_dev(&[3.0]), 0.0);
        assert_eq!(geo_mean(&[]), 0.0);
    }

    #[test]
    fn geo_mean_of_reciprocals_is_reciprocal() {
        let xs = [1.2, 0.9, 1.5];
        let inv: Vec<f64> = xs.iter().map(|x| 1.0 / x).collect();
        assert!((geo_mean(&xs) * geo_mean(&inv) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stats_summary() {
        let s = Stats::from(&[1.0, 2.0, 3.0]);
        assert_eq!(s.n, 3);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!((s.std_dev - 1.0).abs() < 1e-12);
    }
}
