//! Streaming million-task workload generators.
//!
//! The suite generators in the crate root build [`flb_graph::TaskGraph`]s
//! through the validating builder — fine at the paper's `V ≈ 2000`, but at a
//! million tasks the builder's intermediate edge lists, cycle check and
//! adjacency sort dominate. The generators here stream the same topologies
//! directly into [`flb_kernel::FlatGraph`] CSR arrays via
//! [`FlatGraph::from_emitter`]: task ids are assigned in the natural
//! construction order (which is topological), edge endpoints are computed
//! arithmetically, and no per-task `Vec` of handles is ever materialised.
//!
//! Costs are drawn from a [`CostModel`] like [`CostModel::apply`] does:
//! computation costs in task-id order from a generator seeded with `seed`,
//! communication costs in edge-emission order from an independent stream
//! (the emitter runs twice, so the communication generator is reseeded per
//! pass). Topologies are bit-identical to the corresponding
//! [`flb_graph::gen`] generators — the tests check exactly that — while the
//! cost *streams* are this module's own.

use flb_graph::costs::CostModel;
use flb_graph::gen::RandomLayeredSpec;
use flb_graph::Time;
use flb_kernel::FlatGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Decorrelates the communication-cost stream from the computation one
/// (golden-ratio constant, as in splitmix).
fn comm_seed(seed: u64) -> u64 {
    seed ^ 0x9E37_79B9_7F4A_7C15
}

fn sample_comps(model: &CostModel, seed: u64, v: usize) -> Vec<Time> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..v).map(|_| model.comp.sample(&mut rng)).collect()
}

/// Smallest LU matrix order `m` whose task count `m(m+1)/2` reaches `v`.
#[must_use]
pub fn lu_order_for_tasks(v: usize) -> usize {
    let mut m = (((8.0 * v as f64 + 1.0).sqrt() - 1.0) / 2.0)
        .floor()
        .max(1.0) as usize;
    while m * (m + 1) / 2 < v {
        m += 1;
    }
    m
}

/// Number of tasks in a blocked Cholesky factorisation on `nb` tiles:
/// `nb` POTRF + `nb(nb-1)` TRSM/SYRK + `C(nb, 3)` GEMM.
#[must_use]
pub fn cholesky_task_count(nb: usize) -> usize {
    let gemm = if nb >= 3 {
        nb * (nb - 1) * (nb - 2) / 6
    } else {
        0
    };
    nb + nb * (nb - 1) + gemm
}

/// Smallest tile count `nb` whose Cholesky task count reaches `v`.
#[must_use]
pub fn cholesky_tiles_for_tasks(v: usize) -> usize {
    let mut nb = 1;
    while cholesky_task_count(nb) < v {
        nb += 1;
    }
    nb
}

/// Streams the LU-decomposition topology of [`flb_graph::gen::lu`] straight
/// into a weighted [`FlatGraph`]. `V = m(m+1)/2`, `E = m(m-1)`.
///
/// # Panics
///
/// Panics if `m == 0`.
#[must_use]
pub fn lu_flat(m: usize, model: &CostModel, seed: u64) -> FlatGraph {
    assert!(m > 0, "LU needs at least a 1x1 matrix");
    let v = m * (m + 1) / 2;
    // id of task (k, j) for j >= k; j = k is the pivot task of step k.
    // Step k starts after sum_{s<k} (m - s) = k (2m - k + 1) / 2 tasks.
    let id = move |k: usize, j: usize| (k * (2 * m - k + 1) / 2 + (j - k)) as u32;
    let comm = model.comm_dist();
    FlatGraph::from_emitter(
        format!("lu-{m}-ccr{}-s{seed}", model.ccr),
        sample_comps(model, seed, v),
        m * (m - 1),
        move |sink| {
            let mut rng = StdRng::seed_from_u64(comm_seed(seed));
            for k in 0..m {
                for j in (k + 1)..m {
                    // P_k -> U_{k,j}
                    sink(id(k, k), id(k, j), comm.sample(&mut rng));
                }
                for j in (k + 1)..m {
                    // U_{k,j} -> next task of column j at step k+1.
                    sink(id(k, j), id(k + 1, j), comm.sample(&mut rng));
                }
            }
        },
    )
}

/// Task-id arithmetic for the blocked Cholesky DAG: ids per step `k` are
/// POTRF, then TRSM(k, i) for `i = k+1..nb`, then SYRK likewise, then
/// GEMM(k, i, j) i-major — exactly [`flb_graph::gen::cholesky`]'s order.
#[derive(Clone, Copy)]
struct CholeskyIds {
    nb: usize,
}

impl CholeskyIds {
    fn base(self, k: usize) -> usize {
        // Prefix sum of step sizes 1 + 2r + r(r-1)/2, r = nb - s - 1.
        (0..k)
            .map(|s| {
                let r = self.nb - s - 1;
                1 + 2 * r + r * (r - 1) / 2
            })
            .sum()
    }
    fn potrf(self, k: usize) -> u32 {
        self.base(k) as u32
    }
    fn trsm(self, k: usize, i: usize) -> u32 {
        (self.base(k) + 1 + (i - k - 1)) as u32
    }
    fn syrk(self, k: usize, i: usize) -> u32 {
        (self.base(k) + 1 + (self.nb - k - 1) + (i - k - 1)) as u32
    }
    fn gemm(self, k: usize, i: usize, j: usize) -> u32 {
        let x = i - k - 1; // GEMMs with smaller first index: 0 + 1 + ... + (x-1)
        (self.base(k) + 1 + 2 * (self.nb - k - 1) + x * (x - 1) / 2 + (j - k - 1)) as u32
    }
}

fn cholesky_edges(nb: usize, sink: &mut dyn FnMut(u32, u32)) {
    let ids = CholeskyIds { nb };
    for k in 0..nb {
        if k > 0 {
            // POTRF(k) <- SYRK(k-1, k)
            sink(ids.syrk(k - 1, k), ids.potrf(k));
        }
        for i in (k + 1)..nb {
            sink(ids.potrf(k), ids.trsm(k, i));
            if k > 0 {
                sink(ids.gemm(k - 1, i, k), ids.trsm(k, i));
            }
        }
        for i in (k + 1)..nb {
            sink(ids.trsm(k, i), ids.syrk(k, i));
            if k > 0 {
                sink(ids.syrk(k - 1, i), ids.syrk(k, i));
            }
        }
        for i in (k + 1)..nb {
            for j in (k + 1)..i {
                sink(ids.trsm(k, i), ids.gemm(k, i, j));
                sink(ids.trsm(k, j), ids.gemm(k, i, j));
                if k > 0 {
                    sink(ids.gemm(k - 1, i, j), ids.gemm(k, i, j));
                }
            }
        }
    }
}

/// Streams the blocked-Cholesky topology of [`flb_graph::gen::cholesky`]
/// into a weighted [`FlatGraph`]. `V = nb + nb(nb-1) + C(nb, 3)`.
///
/// Unlike the reference generator's relative kernel weights, computation
/// costs are drawn from `model` (as [`CostModel::apply`] would re-weight
/// them anyway).
///
/// # Panics
///
/// Panics if `nb == 0`.
#[must_use]
pub fn cholesky_flat(nb: usize, model: &CostModel, seed: u64) -> FlatGraph {
    assert!(nb > 0, "cholesky needs at least one tile");
    let v = cholesky_task_count(nb);
    let mut num_edges = 0usize;
    cholesky_edges(nb, &mut |_, _| num_edges += 1);
    let comm = model.comm_dist();
    FlatGraph::from_emitter(
        format!("cholesky-{nb}-ccr{}-s{seed}", model.ccr),
        sample_comps(model, seed, v),
        num_edges,
        move |sink| {
            let mut rng = StdRng::seed_from_u64(comm_seed(seed));
            cholesky_edges(nb, &mut |s, d| sink(s, d, comm.sample(&mut rng)));
        },
    )
}

/// Replays [`flb_graph::gen::random_layered`]'s RNG stream (layer sizes,
/// then per-task edge coin flips) against arithmetic ids.
fn layered_edges(
    spec: &RandomLayeredSpec,
    seed: u64,
    starts: &[usize],
    sizes: &[usize],
    sink: &mut dyn FnMut(u32, u32),
) {
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..spec.tasks - spec.layers {
        let _ = rng.random_range(0..spec.layers);
    }
    for l in 1..spec.layers {
        for t_idx in 0..sizes[l] {
            let t = (starts[l] + t_idx) as u32;
            let mut has_pred = false;
            let lo = l.saturating_sub(spec.max_skip.max(1));
            for pl in lo..l {
                for p_idx in 0..sizes[pl] {
                    if rng.random_bool(spec.edge_prob) {
                        sink((starts[pl] + p_idx) as u32, t);
                        has_pred = true;
                    }
                }
            }
            if !has_pred {
                // Guarantee connectivity to the previous layer.
                let p = starts[l - 1] + rng.random_range(0..sizes[l - 1]);
                sink(p as u32, t);
            }
        }
    }
}

/// Streams the random layered DAG of [`flb_graph::gen::random_layered`]
/// (bit-identical topology for the same `spec` and `seed`) into a weighted
/// [`FlatGraph`].
///
/// # Panics
///
/// Panics if `spec.tasks < spec.layers` or `spec.layers == 0`.
#[must_use]
pub fn random_layered_flat(spec: &RandomLayeredSpec, model: &CostModel, seed: u64) -> FlatGraph {
    assert!(spec.tasks >= spec.layers && spec.layers > 0);
    // Layer sizes are the head of the same RNG stream the edges use.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sizes = vec![1usize; spec.layers];
    for _ in 0..spec.tasks - spec.layers {
        let l = rng.random_range(0..spec.layers);
        sizes[l] += 1;
    }
    let mut starts = Vec::with_capacity(spec.layers);
    let mut acc = 0usize;
    for &sz in &sizes {
        starts.push(acc);
        acc += sz;
    }
    let mut num_edges = 0usize;
    layered_edges(spec, seed, &starts, &sizes, &mut |_, _| num_edges += 1);
    let comm = model.comm_dist();
    FlatGraph::from_emitter(
        format!("rand-layered-{}-ccr{}-s{seed}", spec.tasks, model.ccr),
        sample_comps(model, seed, spec.tasks),
        num_edges,
        move |sink| {
            let mut crng = StdRng::seed_from_u64(comm_seed(seed));
            layered_edges(spec, seed, &starts, &sizes, &mut |s, d| {
                sink(s, d, comm.sample(&mut crng));
            });
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use flb_graph::costs::Dist;
    use flb_graph::{gen, TaskGraph, TaskId};

    fn model(ccr: f64) -> CostModel {
        CostModel {
            comp: Dist::UniformMean(100),
            ccr,
        }
    }

    /// Adjacency (ignoring weights) of a flat graph equals the reference
    /// generator's, per task id.
    fn assert_same_topology(flat: &FlatGraph, reference: &TaskGraph) {
        assert_eq!(flat.num_tasks(), reference.num_tasks());
        assert_eq!(flat.num_edges(), reference.num_edges());
        for t in 0..reference.num_tasks() {
            let mut got: Vec<u32> = flat.succs(t as u32).map(|(s, _)| s).collect();
            got.sort_unstable();
            let want: Vec<u32> = reference
                .succs(TaskId(t))
                .iter()
                .map(|&(s, _)| s.0 as u32)
                .collect();
            assert_eq!(got, want, "successors of task {t} differ");
        }
    }

    #[test]
    fn lu_flat_matches_reference_topology() {
        for m in [1usize, 2, 3, 8, 20] {
            let flat = lu_flat(m, &model(1.0), 7);
            assert_same_topology(&flat, &gen::lu(m));
        }
    }

    #[test]
    fn cholesky_flat_matches_reference_topology() {
        for nb in [1usize, 2, 3, 6, 10] {
            let flat = cholesky_flat(nb, &model(1.0), 7);
            assert_same_topology(&flat, &gen::cholesky(nb));
            assert_eq!(flat.num_tasks(), cholesky_task_count(nb));
        }
    }

    #[test]
    fn random_layered_flat_matches_reference_topology() {
        let spec = RandomLayeredSpec {
            tasks: 120,
            layers: 8,
            edge_prob: 0.25,
            max_skip: 3,
        };
        for seed in [0u64, 1, 42, 1999] {
            let flat = random_layered_flat(&spec, &model(1.0), seed);
            assert_same_topology(&flat, &gen::random_layered(&spec, seed));
        }
        // Zero edge probability exercises the guaranteed-fallback path.
        let sparse = RandomLayeredSpec {
            edge_prob: 0.0,
            ..spec
        };
        let flat = random_layered_flat(&sparse, &model(1.0), 3);
        assert_same_topology(&flat, &gen::random_layered(&sparse, 3));
    }

    #[test]
    fn generators_are_deterministic_and_seed_sensitive() {
        let a = cholesky_flat(8, &model(0.2), 11);
        let b = cholesky_flat(8, &model(0.2), 11);
        assert_eq!(a.total_comp(), b.total_comp());
        assert_eq!(a.total_comm(), b.total_comm());
        let c = cholesky_flat(8, &model(0.2), 12);
        assert!(a.total_comp() != c.total_comp() || a.total_comm() != c.total_comm());
    }

    #[test]
    fn generators_hit_target_ccr() {
        for ccr in [0.2, 5.0] {
            let g = lu_flat(60, &model(ccr), 5);
            let measured = g.total_comm() as f64 / g.total_comp() as f64 * g.num_tasks() as f64
                / g.num_edges() as f64;
            // Mean comm / mean comp ≈ ccr.
            assert!(
                (measured - ccr).abs() / ccr < 0.2,
                "target CCR {ccr}, measured {measured}"
            );
        }
    }

    #[test]
    fn sizing_helpers_bracket_the_target() {
        for v in [1usize, 100, 2000, 1_000_000] {
            let m = lu_order_for_tasks(v);
            assert!(m * (m + 1) / 2 >= v);
            assert!(m == 1 || (m - 1) * m / 2 < v);
            let nb = cholesky_tiles_for_tasks(v);
            assert!(cholesky_task_count(nb) >= v);
            assert!(nb == 1 || cholesky_task_count(nb - 1) < v);
        }
        // The 1M-task LU instance of the benchmark trajectory.
        assert_eq!(lu_order_for_tasks(1_000_000), 1414);
        assert_eq!(1414 * 1415 / 2, 1_000_405);
    }
}
