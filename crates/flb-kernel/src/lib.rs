//! Data-oriented, allocation-free FLB scheduling kernel.
//!
//! The reference implementation in `flb-core` follows the paper's §4.1
//! pseudocode closely and is the right place to read the algorithm — but
//! its per-step costs (a validating `ScheduleBuilder`, `usize` ids behind
//! newtypes, one `IndexedMinHeap` allocation per processor) put
//! million-task graphs out of reach. This crate is the same algorithm on a
//! different substrate:
//!
//! * [`FlatGraph`] — `u32`-indexed CSR in six flat arrays, with a
//!   streaming constructor so generators build straight into it;
//! * [`KernelRun`] — SoA arenas for per-task state and the five FLB lists
//!   as preallocated flat structures ([`list::FlatHeap`],
//!   [`list::PairingForest`]); zero heap allocations after init;
//! * [`FlbKernel`] — a [`flb_sched::Scheduler`] adapter so the kernel sits
//!   in the conformance registry next to the reference scheduler and every
//!   differential oracle applies to it.
//!
//! The kernel must be **bit-identical** to `flb_core::FlbRun`: same
//! `(task, processor, start)` triple at every step, same run counters.
//! That contract is enforced three ways — the conformance registry (replay
//! class `Exact`), a property test over random graphs/machines/tie-breaks,
//! and the Table 1 trace test.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod graph;
pub mod list;
mod run;

pub use graph::{FlatGraph, NONE};
pub use run::{KernelRun, KernelStep};

use flb_core::TieBreak;
use flb_graph::{TaskGraph, Time};
use flb_sched::{Machine, Placement, ProcId, Schedule, Scheduler};

/// FLB on the flat kernel, as a drop-in [`Scheduler`].
///
/// Converts the graph to [`FlatGraph`] form, runs [`KernelRun`], and
/// re-wraps the placements — bit-identical to `flb_core::Flb` with the
/// same tie-break.
#[derive(Clone, Copy, Debug, Default)]
pub struct FlbKernel {
    /// Tie-break rule among tasks with equal time keys.
    pub tie_break: TieBreak,
}

impl FlbKernel {
    /// Kernel scheduler with the paper's bottom-level tie-break.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for FlbKernel {
    fn name(&self) -> &'static str {
        "flb-kernel"
    }

    fn schedule(&self, graph: &TaskGraph, machine: &Machine) -> Schedule {
        let fg = FlatGraph::from_task_graph(graph);
        let slow: Vec<Time> = (0..machine.num_procs())
            .map(|p| machine.slowdown(ProcId(p)))
            .collect();
        let mut run = KernelRun::new(&fg, &slow, self.tie_break);
        run.run();
        let placements = (0..graph.num_tasks())
            .map(|i| Placement {
                proc: ProcId(run.procs()[i] as usize),
                start: run.starts()[i],
                finish: run.finishes()[i],
            })
            .collect();
        Schedule::from_raw_on(machine.clone(), placements)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flb_core::Flb;
    use flb_graph::paper::fig1;
    use flb_sched::validate::validate;

    #[test]
    fn kernel_schedule_is_valid_and_matches_reference() {
        let g = fig1();
        let m = Machine::new(2);
        let ours = FlbKernel::new().schedule(&g, &m);
        assert_eq!(validate(&g, &ours), Ok(()));
        let reference = Flb::default().schedule(&g, &m);
        assert_eq!(ours.placements(), reference.placements());
        assert_eq!(ours.makespan(), 14);
    }

    #[test]
    fn kernel_handles_single_task_and_single_proc() {
        let mut b = flb_graph::TaskGraphBuilder::new();
        b.add_task(7);
        let g = b.build().unwrap();
        let s = FlbKernel::new().schedule(&g, &Machine::new(1));
        assert_eq!(s.makespan(), 7);
        assert_eq!(validate(&g, &s), Ok(()));
    }
}
