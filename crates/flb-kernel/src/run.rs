//! The FLB inner loop over SoA arenas — allocation-free after construction.
//!
//! [`KernelRun`] is a re-implementation of `flb_core::FlbRun` (the paper's
//! §4.1 pseudocode) designed for million-task graphs. It makes exactly the
//! same scheduling decisions — same candidate pairs, same tie-breaks, same
//! demotion order — which the conformance registry and the bit-identity
//! property tests enforce. What differs is the representation:
//!
//! * task and processor ids are `u32`; per-task state (`bl`, `LMT`,
//!   `EMT(t, EP(t))`, `EP`, readiness countdown, placement) lives in
//!   struct-of-arrays arenas indexed by id;
//! * the per-processor `EMT_EP_task_l` / `LMT_EP_task_l` lists are two
//!   [`PairingForest`]s sharing flat link arrays (a task is enabled by at
//!   most one processor, so all `P` heaps fit one universe);
//! * the non-EP list and both processor lists are [`FlatHeap`]s with
//!   capacity fixed at init;
//! * there is no `ScheduleBuilder`: placements are three flat arrays, and
//!   every quantity (`LMT`, `EP`, `EMT`) is computed by a direct CSR scan.
//!
//! Everything is sized once from `V`, `E` and `P` in [`KernelRun::new`];
//! the steady-state loop performs **zero heap allocations** (verified by a
//! counting-allocator integration test).

use crate::graph::{FlatGraph, NONE};
use crate::list::{FlatHeap, PairingForest, SliceKeys};
use flb_core::{RunStats, TieBreak};
use flb_graph::Time;
use std::cmp::Reverse;

/// Heap key of the non-EP list: `(LMT, Reverse(bottom level))`; the heap
/// itself breaks remaining ties toward the smaller id.
type TaskKey = (Time, Reverse<Time>);

/// One scheduling decision made by [`KernelRun::step`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KernelStep {
    /// The scheduled task.
    pub task: u32,
    /// Destination processor.
    pub proc: u32,
    /// Start time.
    pub start: Time,
    /// Finish time.
    pub finish: Time,
    /// Whether the EP pair (true) or the non-EP pair (false) won.
    pub from_ep_list: bool,
}

/// A resumable FLB execution over a [`FlatGraph`].
pub struct KernelRun<'g> {
    g: &'g FlatGraph,
    /// Per-processor slowdown factors (all 1 on homogeneous machines).
    slow: Vec<Time>,
    tie_break: TieBreak,
    /// Static bottom levels (tie-break priority).
    bl: Vec<Time>,
    /// Remaining unplaced predecessors per task.
    missing_preds: Vec<u32>,
    /// `LMT(t)` for ready tasks.
    lmt: Vec<Time>,
    /// `EMT(t, EP(t))` for ready tasks.
    emt_on_ep: Vec<Time>,
    /// `EP(t)` for ready tasks (`NONE` = entry task).
    ep: Vec<u32>,
    /// Placement arenas (`proc_of[t] == NONE` = unplaced).
    proc_of: Vec<u32>,
    start: Vec<Time>,
    finish: Vec<Time>,
    /// Processor ready times `PRT(p)`.
    prt: Vec<Time>,
    n_placed: usize,
    /// Per-processor EP lists keyed by `EMT(t, EP(t))` / by `LMT(t)`.
    emt_forest: PairingForest,
    lmt_forest: PairingForest,
    emt_root: Vec<u32>,
    lmt_root: Vec<u32>,
    /// Total tasks across all EP lists (for the `max_ready` counter).
    ep_in_lists: usize,
    /// Non-EP ready tasks keyed by `(LMT, ⁻bl)`.
    non_ep: FlatHeap<TaskKey>,
    /// Active processors keyed by the minimum EST of their EP tasks.
    active: FlatHeap<Time>,
    /// All processors keyed by `PRT(p)`.
    all_procs: FlatHeap<Time>,
    stats: RunStats,
}

impl<'g> KernelRun<'g> {
    /// Initialises every arena and list from `V`, `E` and `P`. This is the
    /// only allocating phase; `slow[p]` is processor `p`'s slowdown factor
    /// (use `&[1; P]`-style vectors for the paper's homogeneous machines).
    ///
    /// # Panics
    ///
    /// Panics if `slow` is empty.
    #[must_use]
    pub fn new(g: &'g FlatGraph, slow: &[Time], tie_break: TieBreak) -> Self {
        let v = g.num_tasks();
        let p = slow.len();
        assert!(p > 0, "a machine needs at least one processor");
        let bl = match tie_break {
            TieBreak::BottomLevel => g.bottom_levels(),
            TieBreak::TaskId => vec![0; v],
        };
        let mut run = KernelRun {
            g,
            slow: slow.to_vec(),
            tie_break,
            bl,
            missing_preds: (0..v).map(|i| g.in_degree(i as u32)).collect(),
            lmt: vec![0; v],
            emt_on_ep: vec![0; v],
            ep: vec![NONE; v],
            proc_of: vec![NONE; v],
            start: vec![0; v],
            finish: vec![0; v],
            prt: vec![0; p],
            n_placed: 0,
            emt_forest: PairingForest::new(v),
            lmt_forest: PairingForest::new(v),
            emt_root: vec![NONE; p],
            lmt_root: vec![NONE; p],
            ep_in_lists: 0,
            non_ep: FlatHeap::new(v, (0, Reverse(0))),
            active: FlatHeap::new(p, 0),
            all_procs: FlatHeap::new(p, 0),
            stats: RunStats::default(),
        };
        for t in 0..v as u32 {
            if run.missing_preds[t as usize] == 0 {
                run.enqueue_ready(t);
            }
        }
        run.stats.max_ready = run.ready_len();
        for q in 0..p as u32 {
            run.all_procs.insert(q, 0);
        }
        run
    }

    /// Counters accumulated so far (field-identical to the reference run).
    #[must_use]
    pub fn stats(&self) -> RunStats {
        self.stats
    }

    /// The tie-break rule this run uses.
    #[must_use]
    pub fn tie_break(&self) -> TieBreak {
        self.tie_break
    }

    /// Whether every task has been placed.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.n_placed == self.g.num_tasks()
    }

    /// Processor of each task (`NONE` while unplaced).
    #[must_use]
    pub fn procs(&self) -> &[u32] {
        &self.proc_of
    }

    /// Start time of each task (valid once placed).
    #[must_use]
    pub fn starts(&self) -> &[Time] {
        &self.start
    }

    /// Finish time of each task (valid once placed).
    #[must_use]
    pub fn finishes(&self) -> &[Time] {
        &self.finish
    }

    /// Parallel completion time of the (complete) run.
    #[must_use]
    pub fn makespan(&self) -> Time {
        self.prt.iter().copied().max().unwrap_or(0)
    }

    fn ready_len(&self) -> usize {
        self.non_ep.len() + self.ep_in_lists
    }

    // flb-analyze: region(no-alloc)
    // The steady-state scheduling loop: everything from here to the
    // region-end runs once per task and must not allocate. The fence is
    // the single source of truth for the boundary — the static
    // `no-alloc-in-hot-loop` rule checks call sites inside it, and the
    // counting-allocator test in tests/alloc_free.rs asserts that
    // exactly these functions are fenced.

    /// Runs to completion. Allocation-free.
    pub fn run(&mut self) {
        while self.step().is_some() {}
    }

    /// Schedules one task — the paper's `ScheduleTask` plus the three
    /// update procedures. Returns `None` once every task is placed.
    /// Allocation-free.
    pub fn step(&mut self) -> Option<KernelStep> {
        if self.n_placed == self.g.num_tasks() {
            return None;
        }

        // Candidate (a): EP-type task with minimum EST on its enabling
        // processor — head of the head-of-active-processors' EMT list.
        let ep_pair = self.active.peek().map(|(p, est)| {
            let t = self.emt_root[p as usize];
            debug_assert_ne!(t, NONE, "active processor has EP tasks");
            debug_assert_eq!(
                est,
                self.emt_on_ep[t as usize].max(self.prt[p as usize]),
                "stale active-processor key"
            );
            (t, p, est)
        });

        // Candidate (b): non-EP-type task with minimum LMT on the
        // processor becoming idle the earliest.
        let non_ep_pair = self.non_ep.peek().map(|(t, (lmt, _))| {
            let (p, prt) = self.all_procs.peek().expect("machine has processors");
            (t, p, lmt.max(prt))
        });

        // The EP pair wins only with a strictly smaller EST.
        let (task, proc, start, from_ep_list) = match (ep_pair, non_ep_pair) {
            (Some((t1, p1, e1)), Some((_, _, e2))) if e1 < e2 => (t1, p1, e1, true),
            (_, Some((t2, p2, e2))) => (t2, p2, e2, false),
            (Some((t1, p1, e1)), None) => (t1, p1, e1, true),
            (None, None) => unreachable!("unscheduled tasks but no ready task"),
        };

        // Remove the winner from its lists.
        if from_ep_list {
            let keys = SliceKeys {
                time: &self.emt_on_ep,
                bl: &self.bl,
            };
            self.emt_root[proc as usize] =
                self.emt_forest
                    .remove(&keys, self.emt_root[proc as usize], task);
            let keys = SliceKeys {
                time: &self.lmt,
                bl: &self.bl,
            };
            self.lmt_root[proc as usize] =
                self.lmt_forest
                    .remove(&keys, self.lmt_root[proc as usize], task);
            self.ep_in_lists -= 1;
            self.stats.ep_selections += 1;
        } else {
            let removed = self.non_ep.remove(task);
            debug_assert!(removed.is_some());
            self.stats.non_ep_selections += 1;
        }

        // Place: append on `proc` (FLB never inserts into gaps).
        debug_assert!(start >= self.prt[proc as usize], "append before PRT");
        let finish = start + self.g.comp(task) * self.slow[proc as usize];
        self.proc_of[task as usize] = proc;
        self.start[task as usize] = start;
        self.finish[task as usize] = finish;
        self.prt[proc as usize] = finish;
        self.n_placed += 1;

        self.all_procs.update(proc, finish);
        self.update_task_lists(proc);
        self.update_proc_lists(proc);
        self.update_ready_tasks(task);

        Some(KernelStep {
            task,
            proc,
            start,
            finish,
            from_ep_list,
        })
    }

    /// Paper's `UpdateTaskLists`: demote EP tasks whose `LMT` fell below
    /// the grown `PRT(p)` to the non-EP list, in LMT order.
    fn update_task_lists(&mut self, p: u32) {
        let prt = self.prt[p as usize];
        loop {
            let head = self.lmt_root[p as usize];
            if head == NONE {
                break;
            }
            let lmt = self.lmt[head as usize];
            if lmt >= prt {
                break;
            }
            let keys = SliceKeys {
                time: &self.lmt,
                bl: &self.bl,
            };
            self.lmt_root[p as usize] = self.lmt_forest.pop_min(&keys, head);
            let keys = SliceKeys {
                time: &self.emt_on_ep,
                bl: &self.bl,
            };
            self.emt_root[p as usize] =
                self.emt_forest
                    .remove(&keys, self.emt_root[p as usize], head);
            self.ep_in_lists -= 1;
            self.non_ep
                .insert(head, (lmt, Reverse(self.bl[head as usize])));
            self.stats.demotions += 1;
        }
    }

    /// Paper's `UpdateProcLists`: refresh `p`'s priority in the active
    /// list (minimum EST of its EP tasks) or drop it when empty.
    fn update_proc_lists(&mut self, p: u32) {
        let head = self.emt_root[p as usize];
        if head == NONE {
            self.active.remove(p);
        } else {
            let est = self.emt_on_ep[head as usize].max(self.prt[p as usize]);
            self.active.insert_or_update(p, est);
        }
    }

    /// Paper's `UpdateReadyTasks`: successors that became ready are
    /// classified EP / non-EP and enqueued.
    fn update_ready_tasks(&mut self, scheduled: u32) {
        let g = self.g;
        for (s, _) in g.succs(scheduled) {
            self.missing_preds[s as usize] -= 1;
            if self.missing_preds[s as usize] == 0 {
                self.enqueue_ready(s);
            }
        }
        self.stats.max_ready = self.stats.max_ready.max(self.ready_len());
    }

    /// Classifies and enqueues a ready task. `LMT`, `EP` and `EMT` are
    /// computed by two predecessor CSR scans (the reference computes the
    /// same quantities through its `ScheduleBuilder`): the EP is the
    /// processor of the maximum arrival, ties toward the smallest
    /// processor id then the smallest predecessor id.
    fn enqueue_ready(&mut self, s: u32) {
        let g = self.g;
        // Scan 1: LMT and EP.
        let mut best: Option<(Time, Reverse<u32>, Reverse<u32>)> = None;
        for (q, w) in g.preds(s) {
            let arrival = self.finish[q as usize] + w;
            let cand = (arrival, Reverse(self.proc_of[q as usize]), Reverse(q));
            if best.is_none_or(|b| cand > b) {
                best = Some(cand);
            }
        }
        match best {
            // Entry task: no enabling processor, LMT = 0.
            None => {
                self.lmt[s as usize] = 0;
                self.non_ep.insert(s, (0, Reverse(self.bl[s as usize])));
                self.stats.non_ep_promotions += 1;
            }
            Some((lmt, Reverse(ep), _)) => {
                self.lmt[s as usize] = lmt;
                // Scan 2: EMT on the enabling processor (messages from
                // predecessors already on `ep` are free).
                let mut emt = 0;
                for (q, w) in g.preds(s) {
                    let ft = self.finish[q as usize];
                    let arrives = if self.proc_of[q as usize] == ep {
                        ft
                    } else {
                        ft + w
                    };
                    emt = emt.max(arrives);
                }
                self.ep[s as usize] = ep;
                self.emt_on_ep[s as usize] = emt;
                if lmt < self.prt[ep as usize] {
                    self.non_ep.insert(s, (lmt, Reverse(self.bl[s as usize])));
                    self.stats.non_ep_promotions += 1;
                } else {
                    let keys = SliceKeys {
                        time: &self.emt_on_ep,
                        bl: &self.bl,
                    };
                    self.emt_root[ep as usize] =
                        self.emt_forest.insert(&keys, self.emt_root[ep as usize], s);
                    let keys = SliceKeys {
                        time: &self.lmt,
                        bl: &self.bl,
                    };
                    self.lmt_root[ep as usize] =
                        self.lmt_forest.insert(&keys, self.lmt_root[ep as usize], s);
                    self.ep_in_lists += 1;
                    self.update_proc_lists(ep);
                    self.stats.ep_promotions += 1;
                }
            }
        }
    }

    // flb-analyze: region-end(no-alloc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::FlatGraph;
    use flb_graph::paper::fig1;

    /// The paper's Table 1 trace, decision for decision.
    #[test]
    fn fig1_reproduces_table1_decisions() {
        let g = FlatGraph::from_task_graph(&fig1());
        let mut run = KernelRun::new(&g, &[1, 1], TieBreak::BottomLevel);
        let expected = [
            (0, 0, 0, 2),
            (3, 0, 2, 5),
            (1, 1, 3, 5),
            (2, 0, 5, 7),
            (4, 1, 5, 8),
            (5, 0, 7, 10),
            (6, 1, 8, 10),
            (7, 0, 12, 14),
        ];
        for (i, &(t, p, st, ft)) in expected.iter().enumerate() {
            let step = run.step().expect("more steps expected");
            assert_eq!(
                (step.task, step.proc, step.start, step.finish),
                (t, p, st, ft),
                "iteration {i} diverged from Table 1"
            );
        }
        assert!(run.step().is_none());
        assert!(run.is_complete());
        assert_eq!(run.makespan(), 14);
    }

    #[test]
    fn stats_match_the_reference_counts() {
        let g = FlatGraph::from_task_graph(&fig1());
        let mut run = KernelRun::new(&g, &[1, 1], TieBreak::BottomLevel);
        run.run();
        let st = run.stats();
        assert_eq!(st.ep_selections, 4);
        assert_eq!(st.non_ep_selections, 4);
        assert_eq!(st.ep_promotions, 7);
        assert_eq!(st.non_ep_promotions, 1);
        assert_eq!(st.demotions, 3);
        assert_eq!(st.max_ready, 3);
    }

    #[test]
    fn related_machine_scales_execution_times() {
        let g = FlatGraph::from_task_graph(&fig1());
        let mut run = KernelRun::new(&g, &[2, 3], TieBreak::BottomLevel);
        run.run();
        for t in 0..g.num_tasks() as u32 {
            let p = run.procs()[t as usize] as usize;
            assert_eq!(
                run.finishes()[t as usize] - run.starts()[t as usize],
                g.comp(t) * [2, 3][p]
            );
        }
    }
}
