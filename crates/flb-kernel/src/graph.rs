//! `FlatGraph`: a dense, `u32`-indexed CSR task graph.
//!
//! The reference [`flb_graph::TaskGraph`] is built through a validating
//! builder (duplicate detection, cycle check, adjacency sort) and addresses
//! tasks with `usize` ids wrapped in [`TaskId`]. That is the right interface
//! for correctness work, but at a million tasks the kernel wants something
//! leaner: plain `u32` ids, two CSR halves (successors and predecessors)
//! in six flat arrays, and a construction path that streams edges straight
//! into those arrays with no intermediate edge list.
//!
//! Two ways in:
//!
//! * [`FlatGraph::from_emitter`] — streaming construction for generators:
//!   the emitter closure is invoked twice, once to count degrees and once
//!   to fill the CSR arrays (two-pass counting sort). Edges must point from
//!   a smaller to a larger id, so task ids double as a topological order
//!   and no cycle check or sort is needed.
//! * [`FlatGraph::from_task_graph`] — conversion from any validated
//!   [`TaskGraph`] (arbitrary id order; the topological order is copied).

use flb_graph::{TaskGraph, TaskGraphBuilder, TaskId, Time};

/// Sentinel for "no node" in every `u32`-indexed structure of this crate.
pub const NONE: u32 = u32::MAX;

/// A weighted DAG in compressed-sparse-row form, both directions.
#[derive(Clone, Debug)]
pub struct FlatGraph {
    name: String,
    comp: Vec<Time>,
    succ_off: Vec<u32>,
    succ_dst: Vec<u32>,
    succ_w: Vec<Time>,
    pred_off: Vec<u32>,
    pred_src: Vec<u32>,
    pred_w: Vec<Time>,
    /// A topological order of the ids (identity for streamed graphs).
    topo: Vec<u32>,
}

impl FlatGraph {
    /// Streaming constructor. `emit` must be deterministic: it is called
    /// twice with an edge sink, first to count per-node degrees, then to
    /// fill the CSR arrays. Every edge must satisfy `src < dst` (ids are
    /// the topological order, which all regular workload generators
    /// produce naturally), and both passes must emit exactly `num_edges`
    /// edges.
    ///
    /// # Panics
    ///
    /// Panics on an edge with `src >= dst` or out of range, on an edge
    /// count mismatch between the passes and `num_edges`, or when
    /// `num_edges` does not fit `u32` offsets.
    #[must_use]
    pub fn from_emitter(
        name: impl Into<String>,
        comp: Vec<Time>,
        num_edges: usize,
        emit: impl Fn(&mut dyn FnMut(u32, u32, Time)),
    ) -> Self {
        let v = comp.len();
        assert!(
            num_edges < NONE as usize && v < NONE as usize,
            "graph too large for u32 indices"
        );
        // Pass 1: count degrees into the (future) offset arrays.
        let mut succ_off = vec![0u32; v + 1];
        let mut pred_off = vec![0u32; v + 1];
        let mut seen = 0usize;
        emit(&mut |src, dst, _w| {
            assert!(
                (dst as usize) < v && src < dst,
                "edge {src} -> {dst} must go forward within {v} tasks"
            );
            succ_off[src as usize + 1] += 1;
            pred_off[dst as usize + 1] += 1;
            seen += 1;
        });
        assert_eq!(seen, num_edges, "first pass emitted a different edge count");
        for i in 0..v {
            succ_off[i + 1] += succ_off[i];
            pred_off[i + 1] += pred_off[i];
        }
        // Pass 2: fill, using cursor copies of the offsets.
        let mut succ_dst = vec![0u32; num_edges];
        let mut succ_w = vec![0; num_edges];
        let mut pred_src = vec![0u32; num_edges];
        let mut pred_w = vec![0; num_edges];
        let mut succ_cur: Vec<u32> = succ_off[..v].to_vec();
        let mut pred_cur: Vec<u32> = pred_off[..v].to_vec();
        let mut seen2 = 0usize;
        emit(&mut |src, dst, w| {
            let si = succ_cur[src as usize] as usize;
            succ_dst[si] = dst;
            succ_w[si] = w;
            succ_cur[src as usize] += 1;
            let pi = pred_cur[dst as usize] as usize;
            pred_src[pi] = src;
            pred_w[pi] = w;
            pred_cur[dst as usize] += 1;
            seen2 += 1;
        });
        assert_eq!(seen2, num_edges, "emitter passes disagree on edge count");
        FlatGraph {
            name: name.into(),
            comp,
            succ_off,
            succ_dst,
            succ_w,
            pred_off,
            pred_src,
            pred_w,
            topo: (0..v as u32).collect(),
        }
    }

    /// Converts a validated [`TaskGraph`] (any id order).
    #[must_use]
    pub fn from_task_graph(g: &TaskGraph) -> Self {
        let v = g.num_tasks();
        let e = g.num_edges();
        assert!(
            e < NONE as usize && v < NONE as usize,
            "graph too large for u32 indices"
        );
        let mut fg = FlatGraph {
            name: g.name().to_string(),
            comp: (0..v).map(|i| g.comp(TaskId(i))).collect(),
            succ_off: Vec::with_capacity(v + 1),
            succ_dst: Vec::with_capacity(e),
            succ_w: Vec::with_capacity(e),
            pred_off: Vec::with_capacity(v + 1),
            pred_src: Vec::with_capacity(e),
            pred_w: Vec::with_capacity(e),
            topo: g.topological_order().iter().map(|t| t.0 as u32).collect(),
        };
        fg.succ_off.push(0);
        fg.pred_off.push(0);
        for i in 0..v {
            for &(s, w) in g.succs(TaskId(i)) {
                fg.succ_dst.push(s.0 as u32);
                fg.succ_w.push(w);
            }
            fg.succ_off.push(fg.succ_dst.len() as u32);
            for &(p, w) in g.preds(TaskId(i)) {
                fg.pred_src.push(p.0 as u32);
                fg.pred_w.push(w);
            }
            fg.pred_off.push(fg.pred_src.len() as u32);
        }
        fg
    }

    /// Graph name (carried into conversions and bench labels).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of tasks `V`.
    #[must_use]
    pub fn num_tasks(&self) -> usize {
        self.comp.len()
    }

    /// Number of edges `E`.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.succ_dst.len()
    }

    /// Computation cost of task `v`.
    #[inline]
    #[must_use]
    pub fn comp(&self, v: u32) -> Time {
        self.comp[v as usize]
    }

    /// Successors of `v` with edge weights. Allocation-free.
    #[inline]
    pub fn succs(&self, v: u32) -> impl Iterator<Item = (u32, Time)> + '_ {
        let lo = self.succ_off[v as usize] as usize;
        let hi = self.succ_off[v as usize + 1] as usize;
        self.succ_dst[lo..hi]
            .iter()
            .copied()
            .zip(self.succ_w[lo..hi].iter().copied())
    }

    /// Predecessors of `v` with edge weights. Allocation-free.
    #[inline]
    pub fn preds(&self, v: u32) -> impl Iterator<Item = (u32, Time)> + '_ {
        let lo = self.pred_off[v as usize] as usize;
        let hi = self.pred_off[v as usize + 1] as usize;
        self.pred_src[lo..hi]
            .iter()
            .copied()
            .zip(self.pred_w[lo..hi].iter().copied())
    }

    /// In-degree of `v`.
    #[inline]
    #[must_use]
    pub fn in_degree(&self, v: u32) -> u32 {
        self.pred_off[v as usize + 1] - self.pred_off[v as usize]
    }

    /// Sum of all computation costs (sequential time on a unit machine).
    #[must_use]
    pub fn total_comp(&self) -> Time {
        self.comp.iter().sum()
    }

    /// Sum of all communication costs (for measured-CCR reporting).
    #[must_use]
    pub fn total_comm(&self) -> Time {
        self.succ_w.iter().sum()
    }

    /// Static bottom levels over the stored topological order:
    /// `bl(t) = comp(t) + max over (t,s) in E of (comm(t,s) + bl(s))` —
    /// identical values to [`flb_graph::levels::bottom_levels`].
    #[must_use]
    pub fn bottom_levels(&self) -> Vec<Time> {
        let mut bl = vec![0; self.num_tasks()];
        for &t in self.topo.iter().rev() {
            let tail = self
                .succs(t)
                .map(|(s, w)| w + bl[s as usize])
                .max()
                .unwrap_or(0);
            bl[t as usize] = self.comp(t) + tail;
        }
        bl
    }

    /// Converts back into a validated [`TaskGraph`] (used when a reference
    /// scheduler or checker needs the builder-based representation).
    ///
    /// # Panics
    ///
    /// Panics if the graph is somehow invalid — impossible for graphs built
    /// by this crate's constructors.
    #[must_use]
    pub fn to_task_graph(&self) -> TaskGraph {
        let mut b = TaskGraphBuilder::named(self.name.clone());
        b.reserve(self.num_tasks(), self.num_edges());
        for &c in &self.comp {
            b.add_task(c);
        }
        for v in 0..self.num_tasks() as u32 {
            for (s, w) in self.succs(v) {
                b.add_edge(TaskId(v as usize), TaskId(s as usize), w)
                    .expect("flat graph edges are valid");
            }
        }
        b.build().expect("flat graph is acyclic")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flb_graph::levels::bottom_levels;
    use flb_graph::paper::fig1;

    #[test]
    fn from_task_graph_round_trips() {
        let g = fig1();
        let fg = FlatGraph::from_task_graph(&g);
        assert_eq!(fg.num_tasks(), g.num_tasks());
        assert_eq!(fg.num_edges(), g.num_edges());
        for i in 0..g.num_tasks() {
            assert_eq!(fg.comp(i as u32), g.comp(TaskId(i)));
            let succs: Vec<_> = fg.succs(i as u32).collect();
            let expect: Vec<_> = g
                .succs(TaskId(i))
                .iter()
                .map(|&(s, w)| (s.0 as u32, w))
                .collect();
            assert_eq!(succs, expect);
            let preds: Vec<_> = fg.preds(i as u32).collect();
            assert_eq!(preds.len(), g.preds(TaskId(i)).len());
        }
        let back = fg.to_task_graph();
        assert_eq!(back.num_tasks(), g.num_tasks());
        assert_eq!(back.num_edges(), g.num_edges());
    }

    #[test]
    fn bottom_levels_match_reference() {
        let g = fig1();
        let fg = FlatGraph::from_task_graph(&g);
        assert_eq!(fg.bottom_levels(), bottom_levels(&g));
        // Also on a permuted (non-identity topological order) graph.
        let lu = flb_graph::gen::lu(7);
        let perm: Vec<TaskId> = (0..lu.num_tasks())
            .map(|i| TaskId((i * 13 + 5) % lu.num_tasks()))
            .collect();
        let shuffled = flb_graph::transform::permute(&lu, &perm);
        let fs = FlatGraph::from_task_graph(&shuffled);
        assert_eq!(fs.bottom_levels(), bottom_levels(&shuffled));
    }

    #[test]
    fn from_emitter_builds_the_diamond() {
        // 0 -> {1, 2} -> 3
        let edges = [(0u32, 1u32, 5u64), (0, 2, 6), (1, 3, 7), (2, 3, 8)];
        let fg = FlatGraph::from_emitter("diamond", vec![1, 2, 3, 4], edges.len(), |sink| {
            for &(s, d, w) in &edges {
                sink(s, d, w);
            }
        });
        assert_eq!(fg.num_tasks(), 4);
        assert_eq!(fg.num_edges(), 4);
        assert_eq!(fg.succs(0).collect::<Vec<_>>(), vec![(1, 5), (2, 6)]);
        assert_eq!(fg.preds(3).collect::<Vec<_>>(), vec![(1, 7), (2, 8)]);
        assert_eq!(fg.in_degree(0), 0);
        assert_eq!(fg.in_degree(3), 2);
        assert_eq!(fg.total_comp(), 10);
        // bl(3)=4, bl(1)=2+7+4=13, bl(2)=3+8+4=15, bl(0)=1+6+15=22
        assert_eq!(fg.bottom_levels(), vec![22, 13, 15, 4]);
    }

    #[test]
    #[should_panic(expected = "must go forward")]
    fn from_emitter_rejects_backward_edges() {
        let _ = FlatGraph::from_emitter("bad", vec![1, 1], 1, |sink| sink(1, 0, 1));
    }
}
