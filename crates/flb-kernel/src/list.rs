//! The five FLB lists as flat, preallocated, index-linked structures.
//!
//! Two shapes cover all of them:
//!
//! * [`FlatHeap`] — an indexed binary min-heap over a fixed universe of
//!   `u32` ids, every array sized once at construction. Semantically a
//!   `u32` twin of [`flb_ds::IndexedMinHeap`](https://docs.rs) (ties on
//!   equal keys go to the smaller id), but with the guarantee that no
//!   operation ever allocates. Backs the global non-EP task list and both
//!   processor lists.
//! * [`PairingForest`] — `P` pairing heaps sharing three per-task link
//!   arrays (`child`/`sib`/`prev`). The per-processor `EMT_EP_task_l[p]`
//!   and `LMT_EP_task_l[p]` lists cannot each own a `V`-capacity binary
//!   heap (that would be `O(V·P)` memory), but a task is in at most one
//!   processor's list at a time, so all `P` heaps fit in one shared set of
//!   links with a root slot per processor. Keys are *not* stored: every
//!   operation takes the key array and the tie-break array as arguments
//!   and compares `(time[v], Reverse(bl[v]), v)` — a strict total order,
//!   so the minimum is unique and the forest is deterministic.
//!
//! Pairing heaps give O(1) insert/meld and amortised `O(log n)` delete-min
//! and arbitrary delete — matching the `O(V (log W + log P) + E)` bound of
//! the paper with a constant factor small enough for million-task graphs.

use crate::graph::NONE;
use flb_graph::Time;
use std::cmp::Reverse;

/// An indexed binary min-heap over ids `0..universe`, ties to the smaller
/// id. All storage is allocated in [`FlatHeap::new`]; no later operation
/// allocates.
#[derive(Clone, Debug)]
pub struct FlatHeap<K> {
    /// Heap slots -> id.
    heap: Vec<u32>,
    /// id -> heap slot, or `NONE` when absent.
    pos: Vec<u32>,
    /// id -> key (valid only while the id is present).
    key: Vec<K>,
}

impl<K: Copy + Ord> FlatHeap<K> {
    /// An empty heap over ids `0..universe`. `fill` initialises the key
    /// arena (any value; keys are written on insert).
    #[must_use]
    pub fn new(universe: usize, fill: K) -> Self {
        FlatHeap {
            heap: Vec::with_capacity(universe),
            pos: vec![NONE; universe],
            key: vec![fill; universe],
        }
    }

    // flb-analyze: region(no-alloc)
    // Every FlatHeap operation past construction is allocation-free;
    // tests/alloc_free.rs asserts the same boundary with a counting
    // allocator.

    /// Number of ids currently in the heap.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the heap is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Whether `id` is in the heap.
    #[must_use]
    pub fn contains(&self, id: u32) -> bool {
        self.pos[id as usize] != NONE
    }

    /// The key of `id`, if present.
    #[must_use]
    pub fn key_of(&self, id: u32) -> Option<K> {
        self.contains(id).then(|| self.key[id as usize])
    }

    /// Minimum entry `(id, key)` without removing it.
    #[must_use]
    pub fn peek(&self) -> Option<(u32, K)> {
        self.heap.first().map(|&id| (id, self.key[id as usize]))
    }

    #[inline]
    fn less(&self, a: u32, b: u32) -> bool {
        (self.key[a as usize], a) < (self.key[b as usize], b)
    }

    /// Inserts `id` with `key`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `id` is already present.
    pub fn insert(&mut self, id: u32, key: K) {
        debug_assert!(!self.contains(id), "duplicate insert of {id}");
        self.key[id as usize] = key;
        let slot = self.heap.len();
        // flb-analyze: allow(no-alloc-in-hot-loop, reason="heap was built with Vec::with_capacity(universe) in new(), and the duplicate-insert debug_assert keeps len <= universe, so this push never reallocates")
        self.heap.push(id);
        self.pos[id as usize] = slot as u32;
        self.sift_up(slot);
    }

    /// Inserts `id` or replaces its key.
    pub fn insert_or_update(&mut self, id: u32, key: K) {
        if self.contains(id) {
            self.update(id, key);
        } else {
            self.insert(id, key);
        }
    }

    /// Replaces the key of a present `id` (any direction).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `id` is absent.
    pub fn update(&mut self, id: u32, key: K) {
        debug_assert!(self.contains(id), "update of absent {id}");
        self.key[id as usize] = key;
        let slot = self.pos[id as usize] as usize;
        self.sift_up(slot);
        let slot = self.pos[id as usize] as usize;
        self.sift_down(slot);
    }

    /// Removes and returns the minimum entry.
    pub fn pop(&mut self) -> Option<(u32, K)> {
        let &min = self.heap.first()?;
        self.remove(min);
        Some((min, self.key[min as usize]))
    }

    /// Removes `id`, returning its key if it was present.
    pub fn remove(&mut self, id: u32) -> Option<K> {
        if !self.contains(id) {
            return None;
        }
        let slot = self.pos[id as usize] as usize;
        let last = self.heap.len() - 1;
        self.heap.swap(slot, last);
        self.pos[self.heap[slot] as usize] = slot as u32;
        self.heap.pop();
        self.pos[id as usize] = NONE;
        if slot < self.heap.len() {
            // Re-seat the element swapped into `slot`: it may belong
            // either above or below its new position.
            let moved = self.heap[slot];
            self.sift_up(slot);
            self.sift_down(self.pos[moved as usize] as usize);
        }
        Some(self.key[id as usize])
    }

    fn sift_up(&mut self, mut slot: usize) {
        while slot > 0 {
            let parent = (slot - 1) / 2;
            if self.less(self.heap[slot], self.heap[parent]) {
                self.heap.swap(slot, parent);
                self.pos[self.heap[slot] as usize] = slot as u32;
                self.pos[self.heap[parent] as usize] = parent as u32;
                slot = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut slot: usize) {
        loop {
            let l = 2 * slot + 1;
            let r = 2 * slot + 2;
            let mut best = slot;
            if l < self.heap.len() && self.less(self.heap[l], self.heap[best]) {
                best = l;
            }
            if r < self.heap.len() && self.less(self.heap[r], self.heap[best]) {
                best = r;
            }
            if best == slot {
                break;
            }
            self.heap.swap(slot, best);
            self.pos[self.heap[slot] as usize] = slot as u32;
            self.pos[self.heap[best] as usize] = best as u32;
            slot = best;
        }
    }

    // flb-analyze: region-end(no-alloc)
}

/// Where a [`PairingForest`] reads its comparison keys from.
///
/// The forest stores no keys: every operation asks this source for
/// `(time, bottom level)` of a node and compares
/// `(time(a), Reverse(bl(a)), a)` — a strict total order. The sequential
/// kernel reads plain slices ([`SliceKeys`]); `flb-par` implements the
/// trait over atomic arrays so shards can share one key arena while each
/// owns its forest. Keys must not change while a node is linked into a
/// heap (the usual heap contract).
pub trait TaskKeys {
    /// The primary key (a time quantity) of node `v`.
    fn time(&self, v: u32) -> Time;
    /// The tie-break bottom level of node `v` (larger wins).
    fn bl(&self, v: u32) -> Time;
}

/// [`TaskKeys`] over two plain slices — the sequential kernel's view.
#[derive(Clone, Copy, Debug)]
pub struct SliceKeys<'a> {
    /// Primary key per node.
    pub time: &'a [Time],
    /// Tie-break bottom level per node.
    pub bl: &'a [Time],
}

impl TaskKeys for SliceKeys<'_> {
    #[inline]
    fn time(&self, v: u32) -> Time {
        self.time[v as usize]
    }

    #[inline]
    fn bl(&self, v: u32) -> Time {
        self.bl[v as usize]
    }
}

/// `P` pairing heaps over a shared universe of `V` nodes.
///
/// The caller owns the root of each heap (`NONE` = empty) and the key
/// source; every operation returns the new root. Nodes must be in at most
/// one heap of a forest at a time — exactly FLB's invariant that a task is
/// enabled by one processor.
#[derive(Clone, Debug)]
pub struct PairingForest {
    /// First child of a node, or `NONE`.
    child: Vec<u32>,
    /// Next sibling, or `NONE`. Doubles as the scratch stack link during
    /// the two-pass combine, so no auxiliary storage is ever needed.
    sib: Vec<u32>,
    /// Previous sibling — or the parent when the node is a first child
    /// (distinguished by `child[prev[v]] == v`). `NONE` for roots.
    prev: Vec<u32>,
}

/// `(time(a), Reverse(bl(a)), a) < (time(b), Reverse(bl(b)), b)` — the
/// paper's task ordering: earlier time first, then larger bottom level,
/// then smaller id.
#[inline]
fn task_less<K: TaskKeys + ?Sized>(keys: &K, a: u32, b: u32) -> bool {
    (keys.time(a), Reverse(keys.bl(a)), a) < (keys.time(b), Reverse(keys.bl(b)), b)
}

impl PairingForest {
    /// A forest over nodes `0..universe`, all heaps empty.
    #[must_use]
    pub fn new(universe: usize) -> Self {
        PairingForest {
            child: vec![NONE; universe],
            sib: vec![NONE; universe],
            prev: vec![NONE; universe],
        }
    }

    // flb-analyze: region(no-alloc)
    // Pairing-heap links live in the three arrays sized at new();
    // meld/insert/combine/pop/remove only rewrite indices.

    /// Melds two non-`NONE` roots; returns the winner.
    #[inline]
    fn meld<K: TaskKeys + ?Sized>(&mut self, keys: &K, a: u32, b: u32) -> u32 {
        let (top, bot) = if task_less(keys, a, b) {
            (a, b)
        } else {
            (b, a)
        };
        let c = self.child[top as usize];
        self.sib[bot as usize] = c;
        if c != NONE {
            self.prev[c as usize] = bot;
        }
        self.prev[bot as usize] = top;
        self.child[top as usize] = bot;
        top
    }

    /// Inserts node `v` into the heap rooted at `root` (`NONE` = empty);
    /// returns the new root. `v` must not be in any heap of the forest.
    #[must_use]
    pub fn insert<K: TaskKeys + ?Sized>(&mut self, keys: &K, root: u32, v: u32) -> u32 {
        debug_assert!(
            self.child[v as usize] == NONE
                && self.sib[v as usize] == NONE
                && self.prev[v as usize] == NONE,
            "insert of linked node {v}"
        );
        if root == NONE {
            v
        } else {
            self.meld(keys, root, v)
        }
    }

    /// Two-pass pairing combine of a sibling list starting at `first`
    /// (whose `prev` must already be cleared); returns the resulting root.
    fn combine_siblings<K: TaskKeys + ?Sized>(&mut self, keys: &K, first: u32) -> u32 {
        // Pass 1: meld adjacent pairs left to right, stacking the winners
        // through their (now free) `sib` links.
        let mut stack = NONE;
        let mut cur = first;
        while cur != NONE {
            let a = cur;
            let b = self.sib[a as usize];
            if b == NONE {
                self.prev[a as usize] = NONE;
                self.sib[a as usize] = stack;
                stack = a;
                break;
            }
            let next = self.sib[b as usize];
            self.sib[a as usize] = NONE;
            self.prev[a as usize] = NONE;
            self.sib[b as usize] = NONE;
            self.prev[b as usize] = NONE;
            let w = self.meld(keys, a, b);
            self.sib[w as usize] = stack;
            stack = w;
            cur = next;
        }
        // Pass 2: fold the stack right to left into one tree.
        let mut root = NONE;
        let mut cur = stack;
        while cur != NONE {
            let next = self.sib[cur as usize];
            self.sib[cur as usize] = NONE;
            root = if root == NONE {
                cur
            } else {
                self.meld(keys, root, cur)
            };
            cur = next;
        }
        root
    }

    /// Removes the minimum (the root itself); returns the new root.
    #[must_use]
    pub fn pop_min<K: TaskKeys + ?Sized>(&mut self, keys: &K, root: u32) -> u32 {
        debug_assert_ne!(root, NONE, "pop from empty heap");
        let c = self.child[root as usize];
        self.child[root as usize] = NONE;
        if c == NONE {
            return NONE;
        }
        self.prev[c as usize] = NONE;
        self.combine_siblings(keys, c)
    }

    /// Removes an arbitrary node `v` from the heap rooted at `root`;
    /// returns the new root.
    #[must_use]
    pub fn remove<K: TaskKeys + ?Sized>(&mut self, keys: &K, root: u32, v: u32) -> u32 {
        if v == root {
            return self.pop_min(keys, root);
        }
        // Unlink v from its sibling list (it has a prev: it is not a root).
        let p = self.prev[v as usize];
        let s = self.sib[v as usize];
        debug_assert_ne!(p, NONE, "non-root node without prev link");
        if self.child[p as usize] == v {
            self.child[p as usize] = s;
        } else {
            self.sib[p as usize] = s;
        }
        if s != NONE {
            self.prev[s as usize] = p;
        }
        self.sib[v as usize] = NONE;
        self.prev[v as usize] = NONE;
        let c = self.child[v as usize];
        self.child[v as usize] = NONE;
        if c == NONE {
            return root;
        }
        self.prev[c as usize] = NONE;
        let t = self.combine_siblings(keys, c);
        self.meld(keys, root, t)
    }

    // flb-analyze: region-end(no-alloc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_heap_orders_and_breaks_ties_by_id() {
        let mut h: FlatHeap<(Time, Reverse<Time>)> = FlatHeap::new(8, (0, Reverse(0)));
        h.insert(3, (5, Reverse(0)));
        h.insert(1, (5, Reverse(0)));
        h.insert(7, (2, Reverse(0)));
        assert_eq!(h.peek(), Some((7, (2, Reverse(0)))));
        assert_eq!(h.pop().map(|(i, _)| i), Some(7));
        // Equal keys: smaller id first.
        assert_eq!(h.pop().map(|(i, _)| i), Some(1));
        assert_eq!(h.pop().map(|(i, _)| i), Some(3));
        assert_eq!(h.pop(), None);
    }

    #[test]
    fn flat_heap_larger_bottom_level_wins_time_ties() {
        let mut h: FlatHeap<(Time, Reverse<Time>)> = FlatHeap::new(4, (0, Reverse(0)));
        h.insert(0, (5, Reverse(1)));
        h.insert(1, (5, Reverse(9)));
        assert_eq!(h.peek().map(|(i, _)| i), Some(1));
    }

    #[test]
    fn flat_heap_update_and_remove() {
        let mut h: FlatHeap<Time> = FlatHeap::new(5, 0);
        for id in 0..5u32 {
            h.insert(id, 10 + Time::from(id));
        }
        h.update(4, 1);
        assert_eq!(h.peek(), Some((4, 1)));
        assert_eq!(h.remove(4), Some(1));
        assert_eq!(h.remove(4), None);
        assert!(!h.contains(4));
        h.insert_or_update(2, 0);
        assert_eq!(h.peek(), Some((2, 0)));
        h.insert_or_update(4, 99);
        assert_eq!(h.len(), 5);
        assert_eq!(h.key_of(4), Some(99));
    }

    /// Differential test: the forest agrees with a sorted-set model under
    /// a long random-ish operation sequence, across two interleaved heaps.
    #[test]
    fn pairing_forest_matches_model() {
        let n = 200usize;
        let time: Vec<Time> = (0..n).map(|i| ((i * 37) % 23) as Time).collect();
        let bl: Vec<Time> = (0..n).map(|i| ((i * 11) % 7) as Time).collect();
        let key = |v: u32| (time[v as usize], Reverse(bl[v as usize]), v);

        let mut f = PairingForest::new(n);
        let mut roots = [NONE, NONE];
        let mut model: [std::collections::BTreeSet<_>; 2] = Default::default();
        let mut x = 12345u64; // tiny LCG driving the op sequence
        let mut rng = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 33) as usize
        };
        let mut present = vec![false; n];
        for _ in 0..5000 {
            let h = rng() % 2;
            match rng() % 4 {
                0 | 1 => {
                    let v = (rng() % n) as u32;
                    if !present[v as usize] {
                        roots[h] = f.insert(
                            &SliceKeys {
                                time: &time,
                                bl: &bl,
                            },
                            roots[h],
                            v,
                        );
                        model[h].insert(key(v));
                        present[v as usize] = true;
                    }
                }
                2 => {
                    if roots[h] != NONE {
                        let min = roots[h];
                        assert_eq!(key(min), *model[h].iter().next().unwrap());
                        roots[h] = f.pop_min(
                            &SliceKeys {
                                time: &time,
                                bl: &bl,
                            },
                            roots[h],
                        );
                        model[h].remove(&key(min));
                        present[min as usize] = false;
                    }
                }
                _ => {
                    // Remove an arbitrary present element of heap h.
                    if let Some(&k) = model[h].iter().nth(rng() % model[h].len().max(1)) {
                        let v = k.2;
                        roots[h] = f.remove(
                            &SliceKeys {
                                time: &time,
                                bl: &bl,
                            },
                            roots[h],
                            v,
                        );
                        model[h].remove(&k);
                        present[v as usize] = false;
                    }
                }
            }
            // The root is always the model minimum.
            for (r, m) in roots.iter().zip(&model) {
                match m.iter().next() {
                    None => assert_eq!(*r, NONE),
                    Some(&k) => assert_eq!(key(*r), k),
                }
            }
        }
        // Drain both heaps fully in sorted order.
        for h in 0..2 {
            let mut drained = Vec::new();
            while roots[h] != NONE {
                drained.push(key(roots[h]));
                roots[h] = f.pop_min(
                    &SliceKeys {
                        time: &time,
                        bl: &bl,
                    },
                    roots[h],
                );
            }
            let expect: Vec<_> = model[h].iter().copied().collect();
            assert_eq!(drained, expect);
        }
    }
}
