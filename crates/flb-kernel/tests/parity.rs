//! Bit-identity: the kernel makes exactly the reference's decisions.
//!
//! `KernelRun` and `flb_core::FlbRun` are stepped in lockstep over random
//! graphs (all generator families, random costs, relabeled ids), machine
//! sizes (homogeneous and related), and both tie-break rules; every step
//! must agree on `(task, proc, start, finish, from_ep_list)` and the final
//! run counters must be equal.

use flb_core::{FlbRun, TieBreak};
use flb_graph::costs::CostModel;
use flb_graph::gen::{self, RandomLayeredSpec};
use flb_graph::{TaskGraph, TaskId};
use flb_kernel::{FlatGraph, KernelRun};
use flb_sched::Machine;
use proptest::prelude::*;

fn arb_topology() -> impl Strategy<Value = TaskGraph> {
    prop_oneof![
        (1usize..10).prop_map(gen::chain),
        (1usize..12).prop_map(gen::independent),
        (1usize..6, 1usize..4).prop_map(|(w, s)| gen::fork_join(w, s)),
        (2usize..12).prop_map(gen::lu),
        (1usize..6).prop_map(gen::laplace),
        (2usize..7).prop_map(gen::cholesky),
        (1usize..5, 1usize..5).prop_map(|(p, s)| gen::stencil(p, s)),
        (10usize..50, 2usize..5, any::<u64>()).prop_map(|(v, l, seed)| {
            gen::random_layered(
                &RandomLayeredSpec {
                    tasks: v,
                    layers: l,
                    edge_prob: 0.3,
                    max_skip: 2,
                },
                seed,
            )
        }),
        (2usize..25, any::<u64>()).prop_map(|(v, seed)| gen::random_dag(v, 0.3, seed)),
    ]
}

/// Topology, optionally re-weighted and optionally relabeled so the flat
/// conversion sees non-identity topological orders too.
fn arb_graph() -> impl Strategy<Value = TaskGraph> {
    (arb_topology(), any::<u64>(), 0u8..4).prop_map(|(topo, seed, mode)| {
        let g = match mode {
            0 => topo,
            1 => CostModel::paper_default(0.2).apply(&topo, seed),
            _ => CostModel::paper_default(5.0).apply(&topo, seed),
        };
        if mode == 3 {
            // A fixed-point-free-ish bijection: reverse the id space.
            let n = g.num_tasks();
            let perm: Vec<TaskId> = (0..n).map(|i| TaskId(n - 1 - i)).collect();
            flb_graph::transform::permute(&g, &perm)
        } else {
            g
        }
    })
}

fn arb_machine() -> impl Strategy<Value = Machine> {
    prop_oneof![
        (1usize..9).prop_map(Machine::new),
        proptest::collection::vec(1u64..4, 1..6).prop_map(Machine::related),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn kernel_steps_are_bit_identical_to_reference(
        g in arb_graph(),
        m in arb_machine(),
        fifo in proptest::strategy::any::<bool>(),
    ) {
        let tie = if fifo { TieBreak::TaskId } else { TieBreak::BottomLevel };
        let fg = FlatGraph::from_task_graph(&g);
        let slow: Vec<u64> = (0..m.num_procs())
            .map(|p| m.slowdown(flb_sched::ProcId(p)))
            .collect();
        let mut reference = FlbRun::new(&g, &m, tie);
        let mut kernel = KernelRun::new(&fg, &slow, tie);
        let mut steps = 0usize;
        loop {
            match (reference.step(), kernel.step()) {
                (None, None) => break,
                (r, k) => {
                    let r = r.unwrap_or_else(|| panic!("reference ended early at step {steps}"));
                    let k = k.unwrap_or_else(|| panic!("kernel ended early at step {steps}"));
                    prop_assert_eq!(
                        (r.task.0, r.proc.0, r.start, r.finish, r.from_ep_list),
                        (k.task as usize, k.proc as usize, k.start, k.finish, k.from_ep_list),
                        "step {} diverged", steps
                    );
                }
            }
            steps += 1;
        }
        prop_assert_eq!(steps, g.num_tasks());
        prop_assert_eq!(reference.stats(), kernel.stats());
        prop_assert_eq!(reference.finish().makespan(), kernel.makespan());
    }
}
