//! Proves the steady-state inner loop performs zero heap allocations.
//!
//! A counting `GlobalAlloc` wraps the system allocator; the test snapshots
//! the allocation counter after `KernelRun::new` (the only allocating
//! phase) and asserts it is unchanged after running a ~20k-task LU graph
//! to completion. This file contains exactly one test so no concurrent
//! test thread can touch the counter mid-measurement.
//!
//! The same test also reads the `// flb-analyze: region(no-alloc)`
//! fences out of the kernel sources and asserts they enclose exactly
//! the functions this allocator measurement covers — the fence the
//! static `no-alloc-in-hot-loop` rule enforces and the dynamic check
//! here share one source of truth, so neither can silently drift.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOC_CALLS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_loop_never_allocates() {
    use flb_core::TieBreak;
    use flb_kernel::{FlatGraph, KernelRun};

    // LU with m = 200 -> V = 20_100, E = 39_800: large enough to exercise
    // promotions, demotions, and deep heaps on several processors.
    let g = FlatGraph::from_task_graph(&flb_graph::gen::lu(200));
    let slow = vec![1u64; 8];
    let mut run = KernelRun::new(&g, &slow, TieBreak::BottomLevel);

    let before = ALLOC_CALLS.load(Ordering::SeqCst);
    run.run();
    let after = ALLOC_CALLS.load(Ordering::SeqCst);

    assert!(run.is_complete());
    assert!(run.makespan() > 0);
    assert_eq!(
        after - before,
        0,
        "steady-state loop allocated {} times",
        after - before
    );

    // Same guarantee on a related machine and the FIFO tie-break.
    let mut run2 = KernelRun::new(&g, &[1, 2, 2, 3], TieBreak::TaskId);
    let before = ALLOC_CALLS.load(Ordering::SeqCst);
    run2.run();
    let after = ALLOC_CALLS.load(Ordering::SeqCst);
    assert_eq!(after - before, 0, "related-machine loop allocated");

    // The static fences cover exactly what this test just measured.
    // `run.run()` drives `step`, the three update procedures and
    // `enqueue_ready` through the FlatHeap/PairingForest operations;
    // constructors stay outside the fences because `new` is the
    // allocating phase by design.
    let fenced = flb_analyze::fenced_functions(include_str!("../src/run.rs"), "no-alloc");
    assert_eq!(
        fenced,
        [
            "run",
            "step",
            "update_task_lists",
            "update_proc_lists",
            "update_ready_tasks",
            "enqueue_ready",
        ],
        "run.rs no-alloc fence drifted from the measured loop"
    );

    let fenced = flb_analyze::fenced_functions(include_str!("../src/list.rs"), "no-alloc");
    assert!(
        !fenced.contains(&"new".to_owned()),
        "constructors must stay outside the list.rs fences"
    );
    for op in [
        "len",
        "insert",
        "insert_or_update",
        "update",
        "pop",
        "remove",
        "sift_up",
        "sift_down",
        "meld",
        "combine_siblings",
        "pop_min",
    ] {
        assert!(
            fenced.iter().any(|f| f == op),
            "list.rs no-alloc fence must cover `{op}`"
        );
    }
}
