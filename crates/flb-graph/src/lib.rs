//! Task-graph substrate for the FLB scheduling system.
//!
//! A parallel program is modelled as a weighted directed acyclic graph
//! `G = (V, E)` (Rădulescu & van Gemund, ICPP 1999, §2): nodes are tasks with
//! a computation cost, edges are dependencies with a communication cost. This
//! crate provides:
//!
//! * [`TaskGraph`] — an immutable, validated, CSR-stored weighted DAG,
//!   constructed through [`TaskGraphBuilder`];
//! * [`levels`] — static levels used by the schedulers (bottom level,
//!   top level, ALAP times, critical path);
//! * [`width`] — the task-graph width `W` (maximum antichain), both exactly
//!   via Dilworth's theorem and as a cheap upper bound;
//! * [`gen`] — the workload generators of the paper's evaluation (LU,
//!   Laplace, stencil, FFT) plus the standard extra families (Gaussian
//!   elimination, random layered graphs, fork–join, trees, chains, …);
//! * [`costs`] — random cost models with controlled communication-to-
//!   computation ratio (CCR);
//! * [`paper`] — the exact example graph of the paper's Fig. 1;
//! * [`dot`] / [`serialize`] — DOT export and a line-oriented text format.
//!
//! Times and costs are unsigned integers ([`Time`], [`Cost`]): schedulers
//! compare and add them exactly, with no floating-point ordering pitfalls;
//! ratios (CCR, speedup, NSL) are computed in `f64` only at reporting time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod graph;

pub mod analyze;
pub mod compose;
pub mod costs;
pub mod dot;
pub mod gen;
pub mod levels;
pub mod paper;
pub mod serialize;
pub mod stg;
pub mod transform;
pub mod width;

pub use graph::{Cost, GraphError, TaskGraph, TaskGraphBuilder, TaskId, Time};
