//! The example task graph of the paper's Fig. 1.
//!
//! The figure itself is partially garbled in the available scan, but every
//! weight is uniquely determined by the execution trace in Table 1: each
//! task's `EMT`, bottom level and `LMT` printed there pin down all edge
//! weights (the reconstruction is re-derived in this module's tests).

use crate::{TaskGraph, TaskGraphBuilder, TaskId};

/// Computation costs of `t0..t7` in Fig. 1.
pub const FIG1_COMP: [u64; 8] = [2, 2, 2, 3, 3, 3, 2, 2];

/// Edges `(src, dst, comm)` of Fig. 1.
pub const FIG1_EDGES: [(usize, usize, u64); 10] = [
    (0, 1, 1),
    (0, 2, 4),
    (0, 3, 1),
    (1, 4, 2),
    (1, 5, 1),
    (3, 5, 1),
    (2, 6, 1),
    (4, 7, 1),
    (5, 7, 3),
    (6, 7, 2),
];

/// Builds the paper's Fig. 1 task graph: 8 tasks, 10 edges.
#[must_use]
pub fn fig1() -> TaskGraph {
    let mut b = TaskGraphBuilder::named("paper-fig1");
    let ids: Vec<TaskId> = FIG1_COMP.iter().map(|&c| b.add_task(c)).collect();
    for &(s, d, c) in &FIG1_EDGES {
        b.add_edge(ids[s], ids[d], c).expect("fig1 edges are valid");
    }
    b.build().expect("fig1 is a DAG")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levels::bottom_levels;

    #[test]
    fn fig1_shape() {
        let g = fig1();
        assert_eq!(g.num_tasks(), 8);
        assert_eq!(g.num_edges(), 10);
        assert_eq!(g.entry_tasks().collect::<Vec<_>>(), vec![TaskId(0)]);
        assert_eq!(g.exit_tasks().collect::<Vec<_>>(), vec![TaskId(7)]);
    }

    /// Bottom levels printed in Table 1: BL(t3)=12, BL(t1)=11, BL(t2)=9,
    /// BL(t4)=6, BL(t5)=8, BL(t6)=6, BL(t7)=2.
    #[test]
    fn fig1_bottom_levels_match_table1() {
        let g = fig1();
        let bl = bottom_levels(&g);
        assert_eq!(bl[7], 2);
        assert_eq!(bl[6], 6);
        assert_eq!(bl[5], 8);
        assert_eq!(bl[4], 6);
        assert_eq!(bl[3], 12);
        assert_eq!(bl[2], 9);
        assert_eq!(bl[1], 11);
        // BL(t0) = 2 + max(1+11, 4+9, 1+12) = 15 (not shown in the table).
        assert_eq!(bl[0], 15);
    }
}
