//! Task-graph width `W`: the maximum number of tasks that are pairwise not
//! connected through a path (§2), i.e. the maximum antichain of the induced
//! partial order.
//!
//! Two computations are provided:
//!
//! * [`max_antichain`] — the exact width, via Dilworth's theorem: the maximum
//!   antichain equals `V` minus a maximum matching in the bipartite graph
//!   whose edges are the *reachability* pairs. Reachability is computed with
//!   per-task bitsets (`O(V·E/64)`), the matching with Hopcroft–Karp
//!   (`O(E_tc·√V)` on the transitive closure). Practical up to a few
//!   thousand tasks — exactly the scale of the paper's workloads.
//! * [`max_ready_width`] — the maximum number of simultaneously *ready*
//!   tasks over a topological sweep. Any set of simultaneously ready tasks
//!   is an antichain, so this is a lower bound on `W`; it is also precisely
//!   the quantity that bounds the ready-list sizes inside FLB, which is why
//!   experiment logs report both.

use crate::{TaskGraph, TaskId};

/// Dense bitset over task ids.
#[derive(Clone)]
struct BitRow(Vec<u64>);

impl BitRow {
    fn zeros(n: usize) -> Self {
        BitRow(vec![0; n.div_ceil(64)])
    }
    fn set(&mut self, i: usize) {
        self.0[i / 64] |= 1 << (i % 64);
    }
    fn or_with(&mut self, other: &BitRow) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a |= *b;
        }
    }
    fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.0.iter().enumerate().flat_map(|(w, &bits)| {
            let mut bits = bits;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(w * 64 + b)
                }
            })
        })
    }
}

/// Reachability bitsets: `reach[t]` has bit `s` set iff there is a non-empty
/// path `t ⇝ s`.
fn reachability(g: &TaskGraph) -> Vec<BitRow> {
    let v = g.num_tasks();
    let mut reach: Vec<BitRow> = vec![BitRow::zeros(v); v];
    for &t in g.topological_order().iter().rev() {
        // Split borrow: take the row out, OR successors in, put it back.
        let mut row = std::mem::replace(&mut reach[t.0], BitRow::zeros(0));
        for &(s, _) in g.succs(t) {
            row.set(s.0);
            row.or_with(&reach[s.0]);
        }
        reach[t.0] = row;
    }
    reach
}

/// Exact task-graph width `W` (maximum antichain) via Dilworth's theorem.
#[must_use]
pub fn max_antichain(g: &TaskGraph) -> usize {
    let v = g.num_tasks();
    let reach = reachability(g);
    let matching = hopcroft_karp(v, &reach);
    v - matching
}

/// Hopcroft–Karp maximum bipartite matching where left node `u` is adjacent
/// to right node `w` iff `reach[u]` has bit `w` set.
fn hopcroft_karp(v: usize, reach: &[BitRow]) -> usize {
    const NIL: usize = usize::MAX;
    let mut match_l = vec![NIL; v];
    let mut match_r = vec![NIL; v];
    let mut dist = vec![usize::MAX; v];
    let mut queue = Vec::with_capacity(v);
    let mut matching = 0;

    loop {
        // BFS from unmatched left vertices to build layers.
        queue.clear();
        for u in 0..v {
            if match_l[u] == NIL {
                dist[u] = 0;
                queue.push(u);
            } else {
                dist[u] = usize::MAX;
            }
        }
        let mut found = false;
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            for w in reach[u].iter_ones() {
                let next = match_r[w];
                if next == NIL {
                    found = true;
                } else if dist[next] == usize::MAX {
                    dist[next] = dist[u] + 1;
                    queue.push(next);
                }
            }
        }
        if !found {
            break;
        }
        // DFS augmenting paths along the layering.
        fn try_augment(
            u: usize,
            reach: &[BitRow],
            match_l: &mut [usize],
            match_r: &mut [usize],
            dist: &mut [usize],
        ) -> bool {
            for w in reach[u].iter_ones() {
                let next = match_r[w];
                let ok = if next == NIL {
                    true
                } else if dist[next] == dist[u] + 1 {
                    try_augment(next, reach, match_l, match_r, dist)
                } else {
                    false
                };
                if ok {
                    match_l[u] = w;
                    match_r[w] = u;
                    return true;
                }
            }
            dist[u] = usize::MAX;
            false
        }
        for u in 0..v {
            if match_l[u] == NIL
                && dist[u] == 0
                && try_augment(u, reach, &mut match_l, &mut match_r, &mut dist)
            {
                matching += 1;
            }
        }
    }
    matching
}

/// Maximum number of simultaneously ready tasks over a topological sweep in
/// which every ready task is "executed" as late as possible layer-wise:
/// repeatedly take the full current ready set as one antichain.
///
/// Lower bound on [`max_antichain`]; upper bound on FLB's ready-list sizes.
#[must_use]
pub fn max_ready_width(g: &TaskGraph) -> usize {
    let v = g.num_tasks();
    let mut indeg: Vec<usize> = (0..v).map(|i| g.in_degree(TaskId(i))).collect();
    let mut ready: Vec<TaskId> = g.entry_tasks().collect();
    let mut widest = ready.len();
    while !ready.is_empty() {
        let layer = std::mem::take(&mut ready);
        for t in layer {
            for &(s, _) in g.succs(t) {
                indeg[s.0] -= 1;
                if indeg[s.0] == 0 {
                    ready.push(s);
                }
            }
        }
        widest = widest.max(ready.len());
    }
    widest
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TaskGraphBuilder;

    fn build(v: usize, edges: &[(usize, usize)]) -> TaskGraph {
        let mut b = TaskGraphBuilder::new();
        let ids: Vec<_> = (0..v).map(|_| b.add_task(1)).collect();
        for &(s, d) in edges {
            b.add_edge(ids[s], ids[d], 1).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn chain_has_width_one() {
        let g = build(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(max_antichain(&g), 1);
        assert_eq!(max_ready_width(&g), 1);
    }

    #[test]
    fn independent_tasks_have_full_width() {
        let g = build(6, &[]);
        assert_eq!(max_antichain(&g), 6);
        assert_eq!(max_ready_width(&g), 6);
    }

    #[test]
    fn diamond_width_two() {
        let g = build(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        assert_eq!(max_antichain(&g), 2);
        assert_eq!(max_ready_width(&g), 2);
    }

    #[test]
    fn two_chains_width_two() {
        let g = build(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
        assert_eq!(max_antichain(&g), 2);
        assert_eq!(max_ready_width(&g), 2);
    }

    #[test]
    fn fork_join_width_is_fanout() {
        // 0 -> {1..=4} -> 5
        let g = build(
            6,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (0, 4),
                (1, 5),
                (2, 5),
                (3, 5),
                (4, 5),
            ],
        );
        assert_eq!(max_antichain(&g), 4);
        assert_eq!(max_ready_width(&g), 4);
    }

    #[test]
    fn antichain_can_exceed_ready_width() {
        // Staircase where the maximum antichain {1, 2} is never a ready set?
        // Build: 0 -> 1, 0 -> 2, 2 -> 3; antichain {1,2} size 2 and ready
        // sweep also sees {1,2}: use a shifted case instead:
        // 0 -> 1 -> 2, and 0 -> 3, 3 -> 4; antichain {1,3} and {2,4}.
        // Ready sweep: {0} -> {1,3} -> {2,4}: width 2 both ways. The general
        // inequality is checked by the cross-crate property tests; here we
        // assert the bound direction on a known-tricky shape.
        let g = build(7, &[(0, 2), (1, 2), (2, 3), (0, 4), (4, 5), (5, 6), (1, 6)]);
        assert!(max_ready_width(&g) <= max_antichain(&g));
    }

    #[test]
    fn multiword_bitsets_are_correct() {
        // More than 64 tasks forces multi-word bitset rows; a graph of two
        // long chains plus independent tasks has a known width.
        let mut b = TaskGraphBuilder::new();
        let chain_a: Vec<_> = (0..40).map(|_| b.add_task(1)).collect();
        let chain_b: Vec<_> = (0..40).map(|_| b.add_task(1)).collect();
        for w in chain_a.windows(2).chain(chain_b.windows(2)) {
            b.add_edge(w[0], w[1], 1).unwrap();
        }
        for _ in 0..10 {
            b.add_task(1); // 10 isolated tasks
        }
        let g = b.build().unwrap(); // 90 tasks -> 2-word rows
        assert_eq!(max_antichain(&g), 2 + 10);
        assert_eq!(max_ready_width(&g), 12);
    }

    #[test]
    fn layered_random_bound_direction() {
        // For every generated shape, ready width <= antichain width.
        let shapes: &[&[(usize, usize)]] = &[
            &[(0, 1), (0, 2), (1, 3), (2, 4), (3, 5), (4, 5)],
            &[(0, 3), (1, 3), (2, 3)],
            &[(0, 1), (1, 2), (0, 3), (3, 2)],
        ];
        for (i, edges) in shapes.iter().enumerate() {
            let v = edges.iter().flat_map(|&(a, b)| [a, b]).max().unwrap() + 1;
            let g = build(v, edges);
            assert!(
                max_ready_width(&g) <= max_antichain(&g),
                "shape {i}: ready width exceeded antichain"
            );
        }
    }
}
