//! The weighted task-DAG type and its builder.

use std::fmt;

/// Discrete time unit used throughout the system.
///
/// All computation and communication costs are integers, so every start and
/// finish time computed by a scheduler is exact. Ratios (speedup, NSL, CCR)
/// are formed in `f64` only when reporting.
pub type Time = u64;

/// A computation or communication cost (same unit as [`Time`]).
pub type Cost = u64;

/// Identifier of a task: a dense index in `0..graph.num_tasks()`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TaskId(pub usize);

impl TaskId {
    /// The dense index of this task.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Errors detected while building a [`TaskGraph`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// An edge references a task id that was never added.
    UnknownTask(TaskId),
    /// An edge from a task to itself.
    SelfLoop(TaskId),
    /// The same `(src, dst)` edge was added twice.
    DuplicateEdge(TaskId, TaskId),
    /// The edge set contains a cycle, so the graph is not a DAG.
    Cycle,
    /// The graph has no tasks.
    Empty,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownTask(t) => write!(f, "edge references unknown task {t}"),
            GraphError::SelfLoop(t) => write!(f, "self-loop on task {t}"),
            GraphError::DuplicateEdge(a, b) => write!(f, "duplicate edge {a} -> {b}"),
            GraphError::Cycle => write!(f, "task graph contains a cycle"),
            GraphError::Empty => write!(f, "task graph has no tasks"),
        }
    }
}

impl std::error::Error for GraphError {}

/// Incremental builder for [`TaskGraph`].
///
/// ```
/// use flb_graph::TaskGraphBuilder;
///
/// let mut b = TaskGraphBuilder::new();
/// let a = b.add_task(2);
/// let c = b.add_task(3);
/// b.add_edge(a, c, 1).unwrap();
/// let g = b.build().unwrap();
/// assert_eq!(g.num_tasks(), 2);
/// assert_eq!(g.num_edges(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct TaskGraphBuilder {
    name: String,
    comp: Vec<Cost>,
    edges: Vec<(TaskId, TaskId, Cost)>,
}

impl TaskGraphBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty builder with a human-readable graph name.
    #[must_use]
    pub fn named(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..Self::default()
        }
    }

    /// Reserves space for `tasks` tasks and `edges` edges.
    pub fn reserve(&mut self, tasks: usize, edges: usize) {
        self.comp.reserve(tasks);
        self.edges.reserve(edges);
    }

    /// Adds a task with computation cost `comp`, returning its id.
    pub fn add_task(&mut self, comp: Cost) -> TaskId {
        let id = TaskId(self.comp.len());
        self.comp.push(comp);
        id
    }

    /// Number of tasks added so far.
    #[must_use]
    pub fn num_tasks(&self) -> usize {
        self.comp.len()
    }

    /// Adds a dependence edge `src -> dst` with communication cost `comm`.
    ///
    /// Fails fast on unknown endpoints and self-loops; duplicate edges and
    /// cycles are detected by [`build`](Self::build).
    pub fn add_edge(&mut self, src: TaskId, dst: TaskId, comm: Cost) -> Result<(), GraphError> {
        if src.0 >= self.comp.len() {
            return Err(GraphError::UnknownTask(src));
        }
        if dst.0 >= self.comp.len() {
            return Err(GraphError::UnknownTask(dst));
        }
        if src == dst {
            return Err(GraphError::SelfLoop(src));
        }
        self.edges.push((src, dst, comm));
        Ok(())
    }

    /// Validates and freezes the graph.
    ///
    /// Checks: at least one task, no duplicate edges, acyclicity (Kahn's
    /// algorithm). The resulting [`TaskGraph`] stores successor and
    /// predecessor adjacency in CSR form plus a topological order.
    pub fn build(self) -> Result<TaskGraph, GraphError> {
        let v = self.comp.len();
        if v == 0 {
            return Err(GraphError::Empty);
        }
        let mut edges = self.edges;
        // Sort by (src, dst) for CSR construction and duplicate detection.
        edges.sort_unstable_by_key(|&(s, d, _)| (s, d));
        for w in edges.windows(2) {
            if w[0].0 == w[1].0 && w[0].1 == w[1].1 {
                return Err(GraphError::DuplicateEdge(w[0].0, w[0].1));
            }
        }

        let e = edges.len();
        let mut succ_off = vec![0usize; v + 1];
        for &(s, _, _) in &edges {
            succ_off[s.0 + 1] += 1;
        }
        for i in 0..v {
            succ_off[i + 1] += succ_off[i];
        }
        let succ: Vec<(TaskId, Cost)> = edges.iter().map(|&(_, d, c)| (d, c)).collect();

        // Predecessor CSR: counting sort by destination.
        let mut pred_off = vec![0usize; v + 1];
        for &(_, d, _) in &edges {
            pred_off[d.0 + 1] += 1;
        }
        for i in 0..v {
            pred_off[i + 1] += pred_off[i];
        }
        let mut cursor = pred_off.clone();
        let mut pred = vec![(TaskId(0), 0); e];
        for &(s, d, c) in &edges {
            pred[cursor[d.0]] = (s, c);
            cursor[d.0] += 1;
        }

        let graph = TaskGraph {
            name: self.name,
            comp: self.comp,
            succ_off,
            succ,
            pred_off,
            pred,
            topo: Vec::new(),
        };
        let topo = graph.kahn_topo().ok_or(GraphError::Cycle)?;
        Ok(TaskGraph { topo, ..graph })
    }
}

/// An immutable weighted task DAG.
///
/// Tasks are identified by dense [`TaskId`]s; adjacency (successors with
/// their communication costs, and symmetrically predecessors) is stored in
/// compressed sparse row form, and a topological order is precomputed.
#[derive(Clone, Debug)]
pub struct TaskGraph {
    name: String,
    comp: Vec<Cost>,
    succ_off: Vec<usize>,
    succ: Vec<(TaskId, Cost)>,
    pred_off: Vec<usize>,
    pred: Vec<(TaskId, Cost)>,
    topo: Vec<TaskId>,
}

impl TaskGraph {
    /// Human-readable name given at construction (may be empty).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of tasks `V`.
    #[must_use]
    pub fn num_tasks(&self) -> usize {
        self.comp.len()
    }

    /// Number of edges `E`.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.succ.len()
    }

    /// Iterator over all task ids in index order.
    pub fn tasks(&self) -> impl Iterator<Item = TaskId> + '_ {
        (0..self.comp.len()).map(TaskId)
    }

    /// Computation cost of `t`.
    #[must_use]
    pub fn comp(&self, t: TaskId) -> Cost {
        self.comp[t.0]
    }

    /// Successors of `t` with the communication cost of each edge.
    #[must_use]
    pub fn succs(&self, t: TaskId) -> &[(TaskId, Cost)] {
        &self.succ[self.succ_off[t.0]..self.succ_off[t.0 + 1]]
    }

    /// Predecessors of `t` with the communication cost of each edge.
    #[must_use]
    pub fn preds(&self, t: TaskId) -> &[(TaskId, Cost)] {
        &self.pred[self.pred_off[t.0]..self.pred_off[t.0 + 1]]
    }

    /// Number of incoming edges of `t`.
    #[must_use]
    pub fn in_degree(&self, t: TaskId) -> usize {
        self.pred_off[t.0 + 1] - self.pred_off[t.0]
    }

    /// Number of outgoing edges of `t`.
    #[must_use]
    pub fn out_degree(&self, t: TaskId) -> usize {
        self.succ_off[t.0 + 1] - self.succ_off[t.0]
    }

    /// Communication cost of edge `src -> dst`, if the edge exists.
    #[must_use]
    pub fn edge_comm(&self, src: TaskId, dst: TaskId) -> Option<Cost> {
        let row = self.succs(src);
        row.binary_search_by_key(&dst, |&(d, _)| d)
            .ok()
            .map(|i| row[i].1)
    }

    /// Tasks with no predecessors (§2: *entry tasks*).
    pub fn entry_tasks(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.tasks().filter(|&t| self.in_degree(t) == 0)
    }

    /// Tasks with no successors (§2: *exit tasks*).
    pub fn exit_tasks(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.tasks().filter(|&t| self.out_degree(t) == 0)
    }

    /// A topological order of the tasks (precomputed, deterministic:
    /// Kahn's algorithm with a smallest-id-first tie break).
    #[must_use]
    pub fn topological_order(&self) -> &[TaskId] {
        &self.topo
    }

    /// Sum of all computation costs — the sequential execution time `T_seq`.
    #[must_use]
    pub fn total_comp(&self) -> Time {
        self.comp.iter().sum()
    }

    /// Sum of all communication costs.
    #[must_use]
    pub fn total_comm(&self) -> Cost {
        self.succ.iter().map(|&(_, c)| c).sum()
    }

    /// Average computation cost over tasks, as `f64`.
    #[must_use]
    pub fn avg_comp(&self) -> f64 {
        self.total_comp() as f64 / self.num_tasks() as f64
    }

    /// Average communication cost over edges, as `f64` (0 if no edges).
    #[must_use]
    pub fn avg_comm(&self) -> f64 {
        if self.num_edges() == 0 {
            0.0
        } else {
            self.total_comm() as f64 / self.num_edges() as f64
        }
    }

    /// Communication-to-computation ratio (§2): average communication cost
    /// over average computation cost.
    #[must_use]
    pub fn ccr(&self) -> f64 {
        self.avg_comm() / self.avg_comp()
    }

    /// Kahn's algorithm; `None` when a cycle exists. Deterministic: the
    /// frontier is kept as a sorted stack of candidate ids processed in
    /// ascending order per layer.
    fn kahn_topo(&self) -> Option<Vec<TaskId>> {
        let v = self.num_tasks();
        let mut indeg: Vec<usize> = (0..v).map(|i| self.in_degree(TaskId(i))).collect();
        let mut order = Vec::with_capacity(v);
        // Ready queue in ascending id order (BinaryHeap of Reverse would also
        // do; a sorted Vec used as a min-stack keeps this allocation-light).
        let mut ready: Vec<usize> = (0..v).filter(|&i| indeg[i] == 0).collect();
        ready.sort_unstable_by(|a, b| b.cmp(a)); // descending; pop() = min
        while let Some(i) = ready.pop() {
            order.push(TaskId(i));
            for &(s, _) in self.succs(TaskId(i)) {
                indeg[s.0] -= 1;
                if indeg[s.0] == 0 {
                    // Insert keeping descending order.
                    let pos = ready.partition_point(|&x| x > s.0);
                    ready.insert(pos, s.0);
                }
            }
        }
        (order.len() == v).then_some(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> TaskGraph {
        // 0 -> {1, 2} -> 3
        let mut b = TaskGraphBuilder::named("diamond");
        let t0 = b.add_task(2);
        let t1 = b.add_task(3);
        let t2 = b.add_task(4);
        let t3 = b.add_task(5);
        b.add_edge(t0, t1, 10).unwrap();
        b.add_edge(t0, t2, 20).unwrap();
        b.add_edge(t1, t3, 30).unwrap();
        b.add_edge(t2, t3, 40).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builder_basics() {
        let g = diamond();
        assert_eq!(g.name(), "diamond");
        assert_eq!(g.num_tasks(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.comp(TaskId(2)), 4);
        assert_eq!(g.succs(TaskId(0)), &[(TaskId(1), 10), (TaskId(2), 20)]);
        assert_eq!(g.preds(TaskId(3)), &[(TaskId(1), 30), (TaskId(2), 40)]);
        assert_eq!(g.in_degree(TaskId(0)), 0);
        assert_eq!(g.out_degree(TaskId(0)), 2);
        assert_eq!(g.edge_comm(TaskId(0), TaskId(2)), Some(20));
        assert_eq!(g.edge_comm(TaskId(1), TaskId(2)), None);
    }

    #[test]
    fn entry_and_exit_tasks() {
        let g = diamond();
        assert_eq!(g.entry_tasks().collect::<Vec<_>>(), vec![TaskId(0)]);
        assert_eq!(g.exit_tasks().collect::<Vec<_>>(), vec![TaskId(3)]);
    }

    #[test]
    fn topological_order_is_valid_and_deterministic() {
        let g = diamond();
        assert_eq!(
            g.topological_order(),
            &[TaskId(0), TaskId(1), TaskId(2), TaskId(3)]
        );
    }

    #[test]
    fn aggregates() {
        let g = diamond();
        assert_eq!(g.total_comp(), 14);
        assert_eq!(g.total_comm(), 100);
        assert!((g.avg_comp() - 3.5).abs() < 1e-12);
        assert!((g.avg_comm() - 25.0).abs() < 1e-12);
        assert!((g.ccr() - 25.0 / 3.5).abs() < 1e-12);
    }

    #[test]
    fn cycle_is_rejected() {
        let mut b = TaskGraphBuilder::new();
        let t0 = b.add_task(1);
        let t1 = b.add_task(1);
        let t2 = b.add_task(1);
        b.add_edge(t0, t1, 0).unwrap();
        b.add_edge(t1, t2, 0).unwrap();
        b.add_edge(t2, t0, 0).unwrap();
        assert_eq!(b.build().unwrap_err(), GraphError::Cycle);
    }

    #[test]
    fn duplicate_edge_is_rejected() {
        let mut b = TaskGraphBuilder::new();
        let t0 = b.add_task(1);
        let t1 = b.add_task(1);
        b.add_edge(t0, t1, 1).unwrap();
        b.add_edge(t0, t1, 2).unwrap();
        assert_eq!(
            b.build().unwrap_err(),
            GraphError::DuplicateEdge(TaskId(0), TaskId(1))
        );
    }

    #[test]
    fn self_loop_is_rejected_eagerly() {
        let mut b = TaskGraphBuilder::new();
        let t0 = b.add_task(1);
        assert_eq!(b.add_edge(t0, t0, 1), Err(GraphError::SelfLoop(t0)));
    }

    #[test]
    fn unknown_task_is_rejected_eagerly() {
        let mut b = TaskGraphBuilder::new();
        let t0 = b.add_task(1);
        assert_eq!(
            b.add_edge(t0, TaskId(7), 1),
            Err(GraphError::UnknownTask(TaskId(7)))
        );
    }

    #[test]
    fn empty_graph_is_rejected() {
        assert_eq!(
            TaskGraphBuilder::new().build().unwrap_err(),
            GraphError::Empty
        );
    }

    #[test]
    fn single_task_graph() {
        let mut b = TaskGraphBuilder::new();
        b.add_task(5);
        let g = b.build().unwrap();
        assert_eq!(g.num_tasks(), 1);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.avg_comm(), 0.0);
        assert_eq!(g.ccr(), 0.0);
        assert_eq!(g.topological_order(), &[TaskId(0)]);
    }

    #[test]
    fn error_display() {
        assert_eq!(GraphError::Cycle.to_string(), "task graph contains a cycle");
        assert_eq!(
            GraphError::SelfLoop(TaskId(3)).to_string(),
            "self-loop on task t3"
        );
    }
}
