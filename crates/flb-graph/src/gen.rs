//! Task-graph topology generators.
//!
//! The paper's evaluation (§6) uses task graphs "representing various types
//! of parallel algorithms": **LU decomposition**, a **Laplace equation
//! solver** and a **stencil algorithm**, each sized to about `V = 2000`
//! tasks, plus **FFT** discussed alongside them. These are the standard
//! synthetic DAG families of the scheduling literature; this module
//! implements them plus the usual extra shapes (trees, fork–join, chains,
//! random layered graphs) used by the wider test suite.
//!
//! Every generator emits **unit** computation and communication costs; the
//! [`crate::costs`] module re-weights a topology with a random cost model at
//! a chosen CCR, matching the paper's methodology (random execution times
//! and communication delays on a fixed topology).

use crate::{Cost, TaskGraph, TaskGraphBuilder, TaskId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// LU-decomposition task graph.
///
/// Column-oriented LU without pivoting on an `m × m` matrix: for each step
/// `k` there is a pivot task `P_k` and update tasks `U_{k,j}` for each later
/// column `j > k`. `P_k` feeds every `U_{k,j}`; `U_{k,j}` feeds the next
/// step's task in the same column (`P_{k+1}` when `j = k+1`, else
/// `U_{k+1,j}`). `V = m(m+1)/2`; the paper's `V ≈ 2000` corresponds to
/// `m = 62` (1953 tasks). The many successive fork–joins give LU its low
/// parallelism at large `P` (§6.2).
///
/// # Panics
///
/// Panics if `m == 0`.
#[must_use]
pub fn lu(m: usize) -> TaskGraph {
    assert!(m > 0, "LU needs at least a 1x1 matrix");
    let mut b = TaskGraphBuilder::named(format!("lu-{m}"));
    // ids[k][j - k] with j = k meaning the pivot task of step k.
    let mut ids: Vec<Vec<TaskId>> = Vec::with_capacity(m);
    for k in 0..m {
        ids.push((k..m).map(|_| b.add_task(1)).collect());
    }
    for k in 0..m {
        for j in (k + 1)..m {
            // P_k -> U_{k,j}
            b.add_edge(ids[k][0], ids[k][j - k], 1).expect("valid edge");
            // U_{k,j} -> next task of column j at step k+1.
            b.add_edge(ids[k][j - k], ids[k + 1][j - k - 1], 1)
                .expect("valid edge");
        }
    }
    b.build().expect("LU topology is a DAG")
}

/// Laplace-solver task graph: an `n × n` wavefront grid.
///
/// Task `(i, j)` depends on `(i-1, j)` and `(i, j-1)` — the data-dependence
/// pattern of a Gauss–Seidel sweep for the Laplace equation. `V = n²`
/// (`n = 45` gives the paper's 2025 tasks); every interior task performs a
/// join, which is why the paper groups Laplace with LU as join-heavy.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn laplace(n: usize) -> TaskGraph {
    assert!(n > 0, "Laplace grid needs n >= 1");
    let mut b = TaskGraphBuilder::named(format!("laplace-{n}"));
    let ids: Vec<Vec<TaskId>> = (0..n)
        .map(|_| (0..n).map(|_| b.add_task(1)).collect())
        .collect();
    for i in 0..n {
        for j in 0..n {
            if i + 1 < n {
                b.add_edge(ids[i][j], ids[i + 1][j], 1).expect("valid edge");
            }
            if j + 1 < n {
                b.add_edge(ids[i][j], ids[i][j + 1], 1).expect("valid edge");
            }
        }
    }
    b.build().expect("Laplace topology is a DAG")
}

/// One-dimensional 3-point stencil task graph.
///
/// `steps` time steps over `points` spatial points; task `(s, i)` depends on
/// `(s-1, i-1)`, `(s-1, i)` and `(s-1, i+1)` (clamped at the borders).
/// `V = points · steps` (`50 × 40 = 2000` for the paper's size). Highly
/// regular, near-constant width — the class the paper reports as achieving
/// linear speedup.
///
/// # Panics
///
/// Panics if `points == 0` or `steps == 0`.
#[must_use]
pub fn stencil(points: usize, steps: usize) -> TaskGraph {
    assert!(points > 0 && steps > 0, "stencil needs points, steps >= 1");
    let mut b = TaskGraphBuilder::named(format!("stencil-{points}x{steps}"));
    let ids: Vec<Vec<TaskId>> = (0..steps)
        .map(|_| (0..points).map(|_| b.add_task(1)).collect())
        .collect();
    for s in 1..steps {
        for i in 0..points {
            let lo = i.saturating_sub(1);
            let hi = (i + 1).min(points - 1);
            for j in lo..=hi {
                b.add_edge(ids[s - 1][j], ids[s][i], 1).expect("valid edge");
            }
        }
    }
    b.build().expect("stencil topology is a DAG")
}

/// FFT butterfly task graph on `2^log2_points` points.
///
/// `log2_points + 1` rows of `2^log2_points` tasks; task `(s, i)` for
/// `s >= 1` depends on `(s-1, i)` and `(s-1, i XOR 2^(s-1))`.
/// `V = (k+1)·2^k` (`k = 8` gives 2304 tasks, the closest to the paper's
/// 2000). Regular with full width — linear-speedup class (§6.2).
///
/// # Panics
///
/// Panics if `log2_points == 0` or `log2_points > 20`.
#[must_use]
pub fn fft(log2_points: u32) -> TaskGraph {
    assert!(
        (1..=20).contains(&log2_points),
        "fft needs 1 <= log2_points <= 20"
    );
    let n = 1usize << log2_points;
    let rows = log2_points as usize + 1;
    let mut b = TaskGraphBuilder::named(format!("fft-{n}"));
    let ids: Vec<Vec<TaskId>> = (0..rows)
        .map(|_| (0..n).map(|_| b.add_task(1)).collect())
        .collect();
    for s in 1..rows {
        let stride = 1usize << (s - 1);
        for i in 0..n {
            b.add_edge(ids[s - 1][i], ids[s][i], 1).expect("valid edge");
            b.add_edge(ids[s - 1][i ^ stride], ids[s][i], 1)
                .expect("valid edge");
        }
    }
    b.build().expect("fft topology is a DAG")
}

/// Blocked (tiled) Cholesky factorisation task graph on an `nb × nb` tile
/// grid — the canonical dense-linear-algebra DAG of task-based runtimes.
///
/// Kernels and dependences per step `k`:
///
/// * `POTRF(k)`  ← `SYRK(k-1, k)`
/// * `TRSM(k,i)` ← `POTRF(k)`, `GEMM(k-1, i, k)`      for `i > k`
/// * `SYRK(k,i)` ← `TRSM(k,i)`, `SYRK(k-1, i)`        for `i > k`
/// * `GEMM(k,i,j)` ← `TRSM(k,i)`, `TRSM(k,j)`, `GEMM(k-1, i, j)` for `k < j < i`
///
/// `V = nb + nb(nb−1) + C(nb,3)` (`nb = 22` gives 2024 tasks). Unlike the
/// other generators this one emits *relative* computation weights matching
/// the kernels' flop counts (`POTRF` 2, `TRSM`/`SYRK` 3, `GEMM` 6) with
/// unit tile-transfer communication; [`crate::costs::CostModel::apply`]
/// still re-weights it like any topology when randomised costs are wanted.
///
/// # Panics
///
/// Panics if `nb == 0`.
#[must_use]
pub fn cholesky(nb: usize) -> TaskGraph {
    assert!(nb > 0, "cholesky needs at least one tile");
    let mut b = TaskGraphBuilder::named(format!("cholesky-{nb}"));
    // Task handles per step: potrf[k], trsm[k][i-k-1], syrk[k][i-k-1],
    // gemm[k] as a map keyed by (i, j).
    let mut potrf = Vec::with_capacity(nb);
    let mut trsm: Vec<Vec<TaskId>> = Vec::with_capacity(nb);
    let mut syrk: Vec<Vec<TaskId>> = Vec::with_capacity(nb);
    let mut gemm: Vec<std::collections::BTreeMap<(usize, usize), TaskId>> = Vec::with_capacity(nb);

    for k in 0..nb {
        let p = b.add_task(2);
        potrf.push(p);
        if k > 0 {
            // POTRF(k) <- SYRK(k-1, k)
            b.add_edge(syrk[k - 1][0], p, 1).expect("valid edge");
        }

        let mut tr = Vec::new();
        for i in (k + 1)..nb {
            let t = b.add_task(3);
            b.add_edge(p, t, 1).expect("valid edge");
            if k > 0 {
                let g = gemm[k - 1][&(i, k)];
                b.add_edge(g, t, 1).expect("valid edge");
            }
            tr.push(t);
        }

        let mut sy = Vec::new();
        for i in (k + 1)..nb {
            let s = b.add_task(3);
            b.add_edge(tr[i - k - 1], s, 1).expect("valid edge");
            if k > 0 {
                b.add_edge(syrk[k - 1][i - k], s, 1).expect("valid edge");
            }
            sy.push(s);
        }

        let mut gm = std::collections::BTreeMap::new();
        for i in (k + 1)..nb {
            for j in (k + 1)..i {
                let g = b.add_task(6);
                b.add_edge(tr[i - k - 1], g, 1).expect("valid edge");
                b.add_edge(tr[j - k - 1], g, 1).expect("valid edge");
                if k > 0 {
                    b.add_edge(gemm[k - 1][&(i, j)], g, 1).expect("valid edge");
                }
                gm.insert((i, j), g);
            }
        }

        trsm.push(tr);
        syrk.push(sy);
        gemm.push(gm);
    }
    b.build().expect("cholesky topology is a DAG")
}

/// Linear chain of `n` tasks (width 1; a serial program).
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn chain(n: usize) -> TaskGraph {
    assert!(n > 0);
    let mut b = TaskGraphBuilder::named(format!("chain-{n}"));
    let ids: Vec<TaskId> = (0..n).map(|_| b.add_task(1)).collect();
    for w in ids.windows(2) {
        b.add_edge(w[0], w[1], 1).expect("valid edge");
    }
    b.build().expect("chain is a DAG")
}

/// `n` independent tasks (width `n`; an embarrassingly parallel program).
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn independent(n: usize) -> TaskGraph {
    assert!(n > 0);
    let mut b = TaskGraphBuilder::named(format!("independent-{n}"));
    for _ in 0..n {
        b.add_task(1);
    }
    b.build().expect("edgeless graph is a DAG")
}

/// Fork–join program: `stages` sequential stages, each forking into `width`
/// parallel tasks that join before the next stage.
///
/// # Panics
///
/// Panics if `width == 0` or `stages == 0`.
#[must_use]
pub fn fork_join(width: usize, stages: usize) -> TaskGraph {
    assert!(width > 0 && stages > 0);
    let mut b = TaskGraphBuilder::named(format!("forkjoin-{width}x{stages}"));
    let mut join = b.add_task(1);
    for _ in 0..stages {
        let mid: Vec<TaskId> = (0..width).map(|_| b.add_task(1)).collect();
        let next = b.add_task(1);
        for &m in &mid {
            b.add_edge(join, m, 1).expect("valid edge");
            b.add_edge(m, next, 1).expect("valid edge");
        }
        join = next;
    }
    b.build().expect("fork-join is a DAG")
}

/// Complete out-tree (fork tree) of the given arity and height
/// (`height = 0` is a single task).
#[must_use]
pub fn out_tree(arity: usize, height: u32) -> TaskGraph {
    assert!(arity > 0);
    let mut b = TaskGraphBuilder::named(format!("outtree-{arity}h{height}"));
    let root = b.add_task(1);
    let mut frontier = vec![root];
    for _ in 0..height {
        let mut next = Vec::with_capacity(frontier.len() * arity);
        for &p in &frontier {
            for _ in 0..arity {
                let c = b.add_task(1);
                b.add_edge(p, c, 1).expect("valid edge");
                next.push(c);
            }
        }
        frontier = next;
    }
    b.build().expect("tree is a DAG")
}

/// Complete in-tree (join/reduction tree): the mirror of [`out_tree`].
#[must_use]
pub fn in_tree(arity: usize, height: u32) -> TaskGraph {
    assert!(arity > 0);
    let mut b = TaskGraphBuilder::named(format!("intree-{arity}h{height}"));
    // Build leaves-to-root: the frontier holds roots of already-built
    // subtrees; combine `arity` of them under each new parent.
    let leaves = (arity as u64).pow(height) as usize;
    let mut frontier: Vec<TaskId> = (0..leaves).map(|_| b.add_task(1)).collect();
    while frontier.len() > 1 {
        let mut next = Vec::with_capacity(frontier.len() / arity);
        for group in frontier.chunks(arity) {
            let parent = b.add_task(1);
            for &c in group {
                b.add_edge(c, parent, 1).expect("valid edge");
            }
            next.push(parent);
        }
        frontier = next;
    }
    b.build().expect("tree is a DAG")
}

/// Parameters for [`random_layered`].
#[derive(Clone, Debug)]
pub struct RandomLayeredSpec {
    /// Approximate total number of tasks.
    pub tasks: usize,
    /// Number of layers (depth of the DAG).
    pub layers: usize,
    /// Probability of an edge between tasks in adjacent layers.
    pub edge_prob: f64,
    /// How many layers ahead an edge may skip (1 = only adjacent).
    pub max_skip: usize,
}

impl Default for RandomLayeredSpec {
    fn default() -> Self {
        Self {
            tasks: 200,
            layers: 10,
            edge_prob: 0.2,
            max_skip: 2,
        }
    }
}

/// Random layered DAG: `spec.tasks` tasks spread over `spec.layers` layers
/// of random (≥ 1) sizes, with forward edges sampled independently between
/// layers at distance ≤ `max_skip`. Every non-first-layer task is guaranteed
/// at least one predecessor, so depth equals the layer structure.
///
/// Deterministic for a fixed `seed`.
#[must_use]
pub fn random_layered(spec: &RandomLayeredSpec, seed: u64) -> TaskGraph {
    assert!(spec.tasks >= spec.layers && spec.layers > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = TaskGraphBuilder::named(format!("rand-layered-{}-s{seed}", spec.tasks));

    // Random layer sizes, each at least 1, summing to `tasks`.
    let mut sizes = vec![1usize; spec.layers];
    for _ in 0..spec.tasks - spec.layers {
        let l = rng.random_range(0..spec.layers);
        sizes[l] += 1;
    }
    let layers: Vec<Vec<TaskId>> = sizes
        .iter()
        .map(|&sz| (0..sz).map(|_| b.add_task(1)).collect())
        .collect();

    for l in 1..spec.layers {
        for &t in &layers[l] {
            let mut has_pred = false;
            let lo = l.saturating_sub(spec.max_skip.max(1));
            for prev_layer in &layers[lo..l] {
                for &p in prev_layer {
                    if rng.random_bool(spec.edge_prob) {
                        b.add_edge(p, t, 1).expect("valid edge");
                        has_pred = true;
                    }
                }
            }
            if !has_pred {
                // Guarantee connectivity to the previous layer.
                let prev = &layers[l - 1];
                let p = prev[rng.random_range(0..prev.len())];
                b.add_edge(p, t, 1).expect("valid edge");
            }
        }
    }
    b.build().expect("layered construction is acyclic")
}

/// Erdős–Rényi random DAG: `v` tasks; each forward pair `(i, j)`, `i < j`,
/// gets an edge with probability `p`. Deterministic for a fixed `seed`.
#[must_use]
pub fn random_dag(v: usize, p: f64, seed: u64) -> TaskGraph {
    assert!(v > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = TaskGraphBuilder::named(format!("rand-dag-{v}-s{seed}"));
    let ids: Vec<TaskId> = (0..v).map(|_| b.add_task(1)).collect();
    for i in 0..v {
        for j in (i + 1)..v {
            if rng.random_bool(p) {
                b.add_edge(ids[i], ids[j], 1).expect("valid edge");
            }
        }
    }
    b.build().expect("forward edges are acyclic")
}

/// The problem families evaluated in the paper, as an enumerable list used
/// by the workload suite and the CLI.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Family {
    /// LU decomposition ([`lu`]).
    Lu,
    /// Laplace solver wavefront grid ([`laplace`]).
    Laplace,
    /// 1-D stencil ([`stencil`]).
    Stencil,
    /// FFT butterfly ([`fft`]).
    Fft,
}

impl Family {
    /// All paper families in presentation order.
    pub const ALL: [Family; 4] = [Family::Lu, Family::Laplace, Family::Stencil, Family::Fft];

    /// Display name matching the paper's figures.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Family::Lu => "LU",
            Family::Laplace => "Laplace",
            Family::Stencil => "Stencil",
            Family::Fft => "FFT",
        }
    }

    /// Generates this family's topology at (approximately) `v` tasks, using
    /// the same size parameters the paper implies for `v ≈ 2000`.
    #[must_use]
    pub fn topology(self, v: usize) -> TaskGraph {
        match self {
            Family::Lu => {
                // V = m (m + 1) / 2  =>  m ≈ (sqrt(8 V + 1) - 1) / 2.
                let m = ((((8 * v + 1) as f64).sqrt() - 1.0) / 2.0).round().max(1.0) as usize;
                lu(m)
            }
            Family::Laplace => {
                let n = (v as f64).sqrt().round().max(1.0) as usize;
                laplace(n)
            }
            Family::Stencil => {
                // Aspect ratio 50 x 40 at v = 2000: points = 1.25 * steps.
                let steps = ((v as f64) / 1.25).sqrt().round().max(1.0) as usize;
                let points = v.div_ceil(steps);
                stencil(points, steps)
            }
            Family::Fft => {
                // V = (k+1) 2^k: pick the k whose size is closest to v.
                let k = (1..=16)
                    .min_by_key(|&k| {
                        let size = (k as usize + 1) << k;
                        size.abs_diff(v)
                    })
                    .expect("non-empty range");
                fft(k)
            }
        }
    }
}

impl std::str::FromStr for Family {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "lu" => Ok(Family::Lu),
            "laplace" => Ok(Family::Laplace),
            "stencil" => Ok(Family::Stencil),
            "fft" => Ok(Family::Fft),
            other => Err(format!("unknown family {other:?} (lu|laplace|stencil|fft)")),
        }
    }
}

/// Unit communication cost shared by all generators (re-weighted later).
#[allow(dead_code)]
const UNIT: Cost = 1;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::width::{max_antichain, max_ready_width};

    #[test]
    fn lu_sizes() {
        assert_eq!(lu(1).num_tasks(), 1);
        assert_eq!(lu(2).num_tasks(), 3);
        assert_eq!(lu(62).num_tasks(), 62 * 63 / 2); // paper scale: 1953
    }

    #[test]
    fn lu_structure() {
        let g = lu(3); // P0, U01, U02, P1, U12, P2
        assert_eq!(g.num_tasks(), 6);
        assert_eq!(g.entry_tasks().count(), 1);
        assert_eq!(g.exit_tasks().count(), 1);
        // P0 forks to both updates.
        assert_eq!(g.out_degree(crate::TaskId(0)), 2);
        // Width: the two updates of step 0 are independent.
        assert_eq!(max_antichain(&g), 2);
    }

    #[test]
    fn laplace_sizes_and_width() {
        let g = laplace(5);
        assert_eq!(g.num_tasks(), 25);
        assert_eq!(g.entry_tasks().count(), 1);
        assert_eq!(g.exit_tasks().count(), 1);
        assert_eq!(max_antichain(&g), 5); // anti-diagonal
        assert_eq!(max_ready_width(&g), 5);
    }

    #[test]
    fn stencil_sizes_and_shape() {
        let g = stencil(4, 3);
        assert_eq!(g.num_tasks(), 12);
        assert_eq!(g.entry_tasks().count(), 4); // whole first row
        assert_eq!(g.exit_tasks().count(), 4); // whole last row
        assert_eq!(max_ready_width(&g), 4);
        // Interior task has 3 predecessors, border tasks 2.
        assert_eq!(g.in_degree(crate::TaskId(5)), 3);
        assert_eq!(g.in_degree(crate::TaskId(4)), 2);
    }

    #[test]
    fn fft_sizes_and_degrees() {
        let g = fft(3);
        assert_eq!(g.num_tasks(), 4 * 8); // (k+1) 2^k
        assert_eq!(g.entry_tasks().count(), 8);
        assert_eq!(g.exit_tasks().count(), 8);
        // Every non-entry task has exactly 2 predecessors.
        for t in g.tasks() {
            let d = g.in_degree(t);
            assert!(d == 0 || d == 2, "task {t} has in-degree {d}");
        }
        assert_eq!(max_ready_width(&g), 8);
    }

    #[test]
    fn cholesky_sizes_and_structure() {
        // V = nb + nb(nb-1) + C(nb, 3).
        let count = |nb: usize| {
            let gemm = if nb >= 3 {
                nb * (nb - 1) * (nb - 2) / 6
            } else {
                0
            };
            nb + nb * (nb - 1) + gemm
        };
        for nb in [1usize, 2, 3, 5, 8] {
            let g = cholesky(nb);
            assert_eq!(g.num_tasks(), count(nb), "nb = {nb}");
            // Single entry (POTRF(0)) and single exit (POTRF(nb-1)).
            assert_eq!(g.entry_tasks().count(), 1, "nb = {nb}");
            assert_eq!(g.exit_tasks().count(), 1, "nb = {nb}");
        }
        assert_eq!(cholesky(22).num_tasks(), 2024); // paper scale
    }

    #[test]
    fn cholesky_kernel_weights() {
        let g = cholesky(3);
        // Entry task is POTRF(0) with weight 2; some GEMM (weight 6) exists.
        let entry = g.entry_tasks().next().unwrap();
        assert_eq!(g.comp(entry), 2);
        assert!(g.tasks().any(|t| g.comp(t) == 6));
        assert!(g.tasks().any(|t| g.comp(t) == 3));
    }

    #[test]
    fn chain_and_independent() {
        assert_eq!(chain(5).num_edges(), 4);
        assert_eq!(max_antichain(&chain(5)), 1);
        assert_eq!(independent(7).num_edges(), 0);
        assert_eq!(max_antichain(&independent(7)), 7);
    }

    #[test]
    fn fork_join_shape() {
        let g = fork_join(4, 2);
        // 1 + (4 + 1) * 2 tasks.
        assert_eq!(g.num_tasks(), 11);
        assert_eq!(g.entry_tasks().count(), 1);
        assert_eq!(g.exit_tasks().count(), 1);
        assert_eq!(max_antichain(&g), 4);
    }

    #[test]
    fn trees() {
        let o = out_tree(2, 3);
        assert_eq!(o.num_tasks(), 15);
        assert_eq!(o.exit_tasks().count(), 8);
        let i = in_tree(2, 3);
        assert_eq!(i.num_tasks(), 15);
        assert_eq!(i.entry_tasks().count(), 8);
        assert_eq!(i.exit_tasks().count(), 1);
    }

    #[test]
    fn random_layered_is_deterministic_and_connected() {
        let spec = RandomLayeredSpec::default();
        let a = random_layered(&spec, 42);
        let b = random_layered(&spec, 42);
        assert_eq!(a.num_tasks(), b.num_tasks());
        assert_eq!(a.num_edges(), b.num_edges());
        assert_eq!(a.num_tasks(), spec.tasks);
        // No isolated non-entry task in any layer beyond the first.
        let entries = a.entry_tasks().count();
        assert!(entries >= 1);
        for t in a.tasks() {
            assert!(a.in_degree(t) > 0 || a.out_degree(t) > 0 || a.num_tasks() == 1 || entries > 0);
        }
        let c = random_layered(&spec, 43);
        assert!(
            a.num_edges() != c.num_edges() || a.total_comp() == c.total_comp(),
            "different seeds should usually differ"
        );
    }

    #[test]
    fn random_layered_zero_prob_still_connected() {
        // With edge_prob 0 every non-first-layer task takes the guaranteed
        // fallback edge to the previous layer: exactly tasks - first_layer
        // edges, and no task in layers 2.. is an entry.
        let spec = RandomLayeredSpec {
            tasks: 30,
            layers: 5,
            edge_prob: 0.0,
            max_skip: 2,
        };
        let g = random_layered(&spec, 9);
        let entries = g.entry_tasks().count();
        assert_eq!(g.num_edges(), g.num_tasks() - entries);
        // Depth matches the layer count.
        let d = crate::levels::depths(&g);
        assert_eq!(d.iter().max(), Some(&4));
    }

    #[test]
    fn random_dag_edge_prob_extremes() {
        let empty = random_dag(10, 0.0, 1);
        assert_eq!(empty.num_edges(), 0);
        let full = random_dag(10, 1.0, 1);
        assert_eq!(full.num_edges(), 45);
        assert_eq!(max_antichain(&full), 1);
    }

    #[test]
    fn family_topology_sizes_near_target() {
        for fam in Family::ALL {
            let g = fam.topology(2000);
            let v = g.num_tasks();
            assert!(
                (1500..=2500).contains(&v),
                "{} generated {v} tasks",
                fam.name()
            );
        }
    }

    #[test]
    fn family_parse_roundtrip() {
        for fam in Family::ALL {
            let parsed: Family = fam.name().to_lowercase().parse().unwrap();
            assert_eq!(parsed, fam);
        }
        assert!("nope".parse::<Family>().is_err());
    }
}
