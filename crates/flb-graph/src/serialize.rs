//! Serialisation of task graphs.
//!
//! Two formats:
//!
//! * **serde** — [`TaskGraphData`] is a plain-old-data mirror of
//!   [`TaskGraph`] deriving `Serialize`/`Deserialize`, convertible in both
//!   directions (deserialisation re-validates through the builder);
//! * **text** — a minimal line-oriented format for CLI interchange:
//!
//!   ```text
//!   # comment
//!   name laplace-4
//!   t <comp>          (one per task, ids assigned in order)
//!   e <src> <dst> <comm>
//!   ```

use crate::{Cost, GraphError, TaskGraph, TaskGraphBuilder, TaskId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Serde-friendly mirror of [`TaskGraph`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskGraphData {
    /// Graph name.
    pub name: String,
    /// Computation cost per task, indexed by task id.
    pub comp: Vec<Cost>,
    /// Edge list `(src, dst, comm)`.
    pub edges: Vec<(usize, usize, Cost)>,
}

impl From<&TaskGraph> for TaskGraphData {
    fn from(g: &TaskGraph) -> Self {
        let mut edges = Vec::with_capacity(g.num_edges());
        for t in g.tasks() {
            for &(s, c) in g.succs(t) {
                edges.push((t.0, s.0, c));
            }
        }
        TaskGraphData {
            name: g.name().to_owned(),
            comp: g.tasks().map(|t| g.comp(t)).collect(),
            edges,
        }
    }
}

impl TryFrom<TaskGraphData> for TaskGraph {
    type Error = GraphError;

    fn try_from(data: TaskGraphData) -> Result<Self, Self::Error> {
        let mut b = TaskGraphBuilder::named(data.name);
        b.reserve(data.comp.len(), data.edges.len());
        for c in data.comp {
            b.add_task(c);
        }
        for (s, d, c) in data.edges {
            b.add_edge(TaskId(s), TaskId(d), c)?;
        }
        b.build()
    }
}

/// Errors from [`parse_text`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TextError {
    /// A line could not be parsed; carries the 1-based line number.
    Malformed(usize, String),
    /// The parsed graph failed validation.
    Graph(GraphError),
}

impl fmt::Display for TextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TextError::Malformed(line, msg) => write!(f, "line {line}: {msg}"),
            TextError::Graph(e) => write!(f, "invalid graph: {e}"),
        }
    }
}

impl std::error::Error for TextError {}

impl From<GraphError> for TextError {
    fn from(e: GraphError) -> Self {
        TextError::Graph(e)
    }
}

/// Emits the line-oriented text format.
#[must_use]
pub fn to_text(g: &TaskGraph) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    if !g.name().is_empty() {
        writeln!(out, "name {}", g.name()).expect("write to string");
    }
    for t in g.tasks() {
        writeln!(out, "t {}", g.comp(t)).expect("write to string");
    }
    for t in g.tasks() {
        for &(s, c) in g.succs(t) {
            writeln!(out, "e {} {} {}", t.0, s.0, c).expect("write to string");
        }
    }
    out
}

/// Parses the line-oriented text format (see module docs). Blank lines and
/// `#` comments are ignored.
pub fn parse_text(text: &str) -> Result<TaskGraph, TextError> {
    let mut name = String::new();
    let mut comp: Vec<Cost> = Vec::new();
    let mut edges: Vec<(usize, usize, Cost)> = Vec::new();

    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_ascii_whitespace();
        match parts.next() {
            Some("name") => {
                name = parts.collect::<Vec<_>>().join(" ");
            }
            Some("t") => {
                let c: Cost = parts
                    .next()
                    .and_then(|x| x.parse().ok())
                    .ok_or_else(|| TextError::Malformed(lineno, "expected `t <comp>`".into()))?;
                comp.push(c);
            }
            Some("e") => {
                let mut next_num = || -> Option<u64> { parts.next()?.parse().ok() };
                let (s, d, c) = match (next_num(), next_num(), next_num()) {
                    (Some(s), Some(d), Some(c)) => (s as usize, d as usize, c),
                    _ => {
                        return Err(TextError::Malformed(
                            lineno,
                            "expected `e <src> <dst> <comm>`".into(),
                        ))
                    }
                };
                edges.push((s, d, c));
            }
            Some(other) => {
                return Err(TextError::Malformed(
                    lineno,
                    format!("unknown directive {other:?}"),
                ));
            }
            None => unreachable!("non-empty trimmed line"),
        }
    }

    TaskGraph::try_from(TaskGraphData { name, comp, edges }).map_err(TextError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::fig1;

    #[test]
    fn data_roundtrip() {
        let g = fig1();
        let data = TaskGraphData::from(&g);
        assert_eq!(data.comp.len(), 8);
        assert_eq!(data.edges.len(), 10);
        let g2 = TaskGraph::try_from(data.clone()).unwrap();
        assert_eq!(TaskGraphData::from(&g2), data);
    }

    #[test]
    fn data_rejects_invalid() {
        let data = TaskGraphData {
            name: String::new(),
            comp: vec![1, 1],
            edges: vec![(0, 1, 1), (1, 0, 1)],
        };
        assert_eq!(TaskGraph::try_from(data).unwrap_err(), GraphError::Cycle);
    }

    #[test]
    fn text_roundtrip() {
        let g = fig1();
        let text = to_text(&g);
        let g2 = parse_text(&text).unwrap();
        assert_eq!(g2.name(), "paper-fig1");
        assert_eq!(g2.num_tasks(), g.num_tasks());
        assert_eq!(g2.num_edges(), g.num_edges());
        for t in g.tasks() {
            assert_eq!(g2.comp(t), g.comp(t));
            assert_eq!(g2.succs(t), g.succs(t));
        }
    }

    #[test]
    fn text_parsing_tolerates_comments_and_blanks() {
        let g = parse_text("# a graph\n\nname tiny\nt 3\nt 4\n\ne 0 1 7\n").unwrap();
        assert_eq!(g.name(), "tiny");
        assert_eq!(g.num_tasks(), 2);
        assert_eq!(g.edge_comm(TaskId(0), TaskId(1)), Some(7));
    }

    #[test]
    fn text_parse_errors() {
        assert!(matches!(
            parse_text("t notanumber"),
            Err(TextError::Malformed(1, _))
        ));
        assert!(matches!(
            parse_text("t 1\ne 0"),
            Err(TextError::Malformed(2, _))
        ));
        assert!(matches!(
            parse_text("frobnicate 1"),
            Err(TextError::Malformed(1, _))
        ));
        assert!(matches!(
            parse_text("t 1\nt 1\ne 0 5 1"),
            Err(TextError::Graph(GraphError::UnknownTask(TaskId(5))))
        ));
    }

    #[test]
    fn text_error_display() {
        let e = TextError::Malformed(3, "boom".into());
        assert_eq!(e.to_string(), "line 3: boom");
        assert_eq!(
            TextError::Graph(GraphError::Cycle).to_string(),
            "invalid graph: task graph contains a cycle"
        );
    }
}
