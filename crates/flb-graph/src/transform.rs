//! Task-graph transformations used as scheduling pre-passes.
//!
//! * [`transitive_reduction`] — removes edges implied by longer paths.
//!   Compilers commonly emit redundant dependence edges; removing one whose
//!   endpoints stay ordered through an intermediate path preserves every
//!   precedence constraint while deleting its message. Only edges whose
//!   communication cannot *lengthen* any path are safe to drop under
//!   communication-aware scheduling, so reduction here removes an edge
//!   `(u, v)` only when some alternative `u ⇝ v` path exists; the effect on
//!   schedule quality is workload-dependent and measured, not assumed.
//! * [`coarsen_chains`] — merges maximal linear chains (out-degree 1 →
//!   in-degree 1 runs) into single tasks, summing computation and dropping
//!   the internal messages: classic granularity coarsening. Returns the
//!   mapping from old to new task ids.
//! * [`permute`] — relabels tasks through a bijection. Task ids are an
//!   artefact of graph construction order, so every analysis quantity
//!   (width, critical path, totals) must be invariant under relabeling;
//!   the conformance harness uses this as a metamorphic relation.
//! * [`scale_costs`] — multiplies every computation and communication cost
//!   by a constant. All schedulers in this workspace compare integer
//!   quantities that are linear in the costs, so scaling by `k` must scale
//!   every schedule exactly by `k` — another metamorphic relation.

use crate::{Cost, TaskGraph, TaskGraphBuilder, TaskId};

/// Removes every edge `(u, v)` for which another `u ⇝ v` path exists.
///
/// The result has the same tasks and the same reachability relation (same
/// partial order, hence identical width and a critical path no longer than
/// the original).
///
/// ```
/// use flb_graph::{transform::transitive_reduction, TaskGraphBuilder};
///
/// let mut b = TaskGraphBuilder::new();
/// let (x, y, z) = (b.add_task(1), b.add_task(1), b.add_task(1));
/// b.add_edge(x, y, 1).unwrap();
/// b.add_edge(y, z, 1).unwrap();
/// b.add_edge(x, z, 9).unwrap(); // implied by x -> y -> z
/// let reduced = transitive_reduction(&b.build().unwrap());
/// assert_eq!(reduced.num_edges(), 2);
/// ```
#[must_use]
pub fn transitive_reduction(g: &TaskGraph) -> TaskGraph {
    let v = g.num_tasks();
    // Longest path (in edges) between adjacent pairs suffices: an edge
    // (u, w) is redundant iff some successor s != w of u reaches w.
    // Reachability bitsets, as in width computation.
    let words = v.div_ceil(64);
    let mut reach = vec![vec![0u64; words]; v];
    for &t in g.topological_order().iter().rev() {
        // reach[t] = union over succs s of ({s} ∪ reach[s]).
        let mut row = std::mem::take(&mut reach[t.0]);
        for &(s, _) in g.succs(t) {
            row[s.0 / 64] |= 1 << (s.0 % 64);
            for (a, b) in row.iter_mut().zip(&reach[s.0]) {
                *a |= *b;
            }
        }
        reach[t.0] = row;
    }

    let mut b = TaskGraphBuilder::named(format!("{}-tr", g.name()));
    b.reserve(v, g.num_edges());
    for t in g.tasks() {
        b.add_task(g.comp(t));
    }
    for t in g.tasks() {
        for &(s, c) in g.succs(t) {
            // Redundant iff some *other* direct successor of t reaches s.
            let redundant = g
                .succs(t)
                .iter()
                .any(|&(mid, _)| mid != s && (reach[mid.0][s.0 / 64] >> (s.0 % 64)) & 1 == 1);
            if !redundant {
                b.add_edge(t, s, c).expect("copying edges of a valid graph");
            }
        }
    }
    b.build().expect("subgraph of a DAG is a DAG")
}

/// Result of [`coarsen_chains`].
#[derive(Clone, Debug)]
pub struct Coarsening {
    /// The coarsened graph.
    pub graph: TaskGraph,
    /// `new_of[old]` = id of the coarse task containing the old task.
    pub new_of: Vec<TaskId>,
}

/// Merges maximal linear chains into single tasks.
///
/// A chain link is an edge `(u, v)` with `out_degree(u) == 1` and
/// `in_degree(v) == 1`: `v` can only ever run right after `u`, so any
/// scheduler may treat the pair as one task with summed computation and no
/// internal message. Communication costs of edges entering/leaving the
/// chain are preserved.
#[must_use]
pub fn coarsen_chains(g: &TaskGraph) -> Coarsening {
    let v = g.num_tasks();
    // Head of each chain: a task whose single predecessor doesn't chain to
    // it. Walk chains from heads in topological order.
    let chains_to = |u: TaskId, s: TaskId| g.out_degree(u) == 1 && g.in_degree(s) == 1;
    let mut new_of: Vec<Option<TaskId>> = vec![None; v];
    let mut b = TaskGraphBuilder::named(format!("{}-coarse", g.name()));

    for &t in g.topological_order() {
        if new_of[t.0].is_some() {
            continue; // interior of an already-merged chain
        }
        // t is a chain head (or a solo task): accumulate the chain.
        let mut comp: Cost = g.comp(t);
        let mut members = vec![t];
        let mut cur = t;
        while let [(next, _)] = g.succs(cur) {
            if chains_to(cur, *next) {
                comp += g.comp(*next);
                members.push(*next);
                cur = *next;
            } else {
                break;
            }
        }
        let id = b.add_task(comp);
        for m in members {
            new_of[m.0] = Some(id);
        }
    }

    // Re-add the surviving (cross-chain) edges.
    let new_of: Vec<TaskId> = new_of.into_iter().map(|x| x.expect("covered")).collect();
    for t in g.tasks() {
        for &(s, c) in g.succs(t) {
            let (a, bb) = (new_of[t.0], new_of[s.0]);
            if a != bb {
                b.add_edge(a, bb, c).expect("cross-chain edge");
            }
        }
    }
    Coarsening {
        graph: b.build().expect("contraction of chains keeps acyclicity"),
        new_of,
    }
}

/// Relabels tasks through the bijection `new_id_of`: old task `t` becomes
/// task `new_id_of[t.0]` in the result, keeping its computation cost, and
/// every edge `(u, v, c)` becomes `(new_id_of[u], new_id_of[v], c)`.
///
/// The result is the same weighted partial order under different names, so
/// width, critical path, depth and cost totals are all preserved exactly.
///
/// # Panics
///
/// Panics when `new_id_of` is not a permutation of `0..g.num_tasks()`.
///
/// ```
/// use flb_graph::{transform::permute, TaskGraphBuilder, TaskId};
///
/// let mut b = TaskGraphBuilder::new();
/// let (x, y) = (b.add_task(3), b.add_task(5));
/// b.add_edge(x, y, 7).unwrap();
/// let g = b.build().unwrap();
/// let p = permute(&g, &[TaskId(1), TaskId(0)]); // swap the two tasks
/// assert_eq!(p.comp(TaskId(1)), 3);
/// assert_eq!(p.edge_comm(TaskId(1), TaskId(0)), Some(7));
/// ```
#[must_use]
pub fn permute(g: &TaskGraph, new_id_of: &[TaskId]) -> TaskGraph {
    let v = g.num_tasks();
    assert_eq!(new_id_of.len(), v, "permutation length mismatch");
    let mut seen = vec![false; v];
    for &n in new_id_of {
        assert!(n.0 < v && !seen[n.0], "new_id_of is not a permutation");
        seen[n.0] = true;
    }
    // comp[new] = comp of the old task mapped there.
    let mut comp = vec![0; v];
    for t in g.tasks() {
        comp[new_id_of[t.0].0] = g.comp(t);
    }
    let mut b = TaskGraphBuilder::named(format!("{}-perm", g.name()));
    b.reserve(v, g.num_edges());
    for c in comp {
        b.add_task(c);
    }
    for t in g.tasks() {
        for &(s, c) in g.succs(t) {
            b.add_edge(new_id_of[t.0], new_id_of[s.0], c)
                .expect("relabeled edge of a valid graph");
        }
    }
    b.build().expect("relabeling preserves acyclicity")
}

/// Multiplies every computation and communication cost by `k ≥ 1`.
///
/// # Panics
///
/// Panics when `k == 0` (a zero-cost graph is not a scaled instance).
#[must_use]
pub fn scale_costs(g: &TaskGraph, k: Cost) -> TaskGraph {
    assert!(k >= 1, "scale factor must be at least 1");
    let mut b = TaskGraphBuilder::named(format!("{}-x{k}", g.name()));
    b.reserve(g.num_tasks(), g.num_edges());
    for t in g.tasks() {
        b.add_task(g.comp(t) * k);
    }
    for t in g.tasks() {
        for &(s, c) in g.succs(t) {
            b.add_edge(t, s, c * k)
                .expect("scaled edge of a valid graph");
        }
    }
    b.build().expect("scaling preserves acyclicity")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levels::critical_path;
    use crate::width::max_antichain;
    use crate::{gen, paper::fig1};

    #[test]
    fn reduction_removes_shortcut_edges() {
        // 0 -> 1 -> 2 plus the redundant shortcut 0 -> 2.
        let mut b = TaskGraphBuilder::new();
        let t0 = b.add_task(1);
        let t1 = b.add_task(1);
        let t2 = b.add_task(1);
        b.add_edge(t0, t1, 5).unwrap();
        b.add_edge(t1, t2, 5).unwrap();
        b.add_edge(t0, t2, 99).unwrap();
        let g = b.build().unwrap();
        let r = transitive_reduction(&g);
        assert_eq!(r.num_edges(), 2);
        assert_eq!(r.edge_comm(t0, t2), None);
        assert_eq!(r.edge_comm(t0, t1), Some(5));
    }

    #[test]
    fn reduction_is_idempotent_and_preserves_order() {
        for g in [fig1(), gen::lu(8), gen::laplace(5), gen::fft(3)] {
            let r = transitive_reduction(&g);
            assert!(r.num_edges() <= g.num_edges());
            assert_eq!(max_antichain(&r), max_antichain(&g), "{}", g.name());
            let r2 = transitive_reduction(&r);
            assert_eq!(r2.num_edges(), r.num_edges());
            // Critical path cannot grow (only edges were removed).
            assert!(critical_path(&r) <= critical_path(&g));
        }
    }

    #[test]
    fn fig1_is_already_reduced() {
        let g = fig1();
        assert_eq!(transitive_reduction(&g).num_edges(), g.num_edges());
    }

    #[test]
    fn coarsen_merges_pure_chain() {
        let g = gen::chain(5);
        let c = coarsen_chains(&g);
        assert_eq!(c.graph.num_tasks(), 1);
        assert_eq!(c.graph.num_edges(), 0);
        assert_eq!(c.graph.comp(TaskId(0)), 5);
        assert!(c.new_of.iter().all(|&n| n == TaskId(0)));
    }

    #[test]
    fn coarsen_preserves_branching_structure() {
        // Diamond with a 2-chain on one arm:
        // 0 -> 1 -> 2 -> 3 and 0 -> 4 -> 3; (1,2) is the only chain link.
        let mut b = TaskGraphBuilder::new();
        let t0 = b.add_task(1);
        let t1 = b.add_task(2);
        let t2 = b.add_task(3);
        let t3 = b.add_task(1);
        let t4 = b.add_task(9);
        b.add_edge(t0, t1, 1).unwrap();
        b.add_edge(t1, t2, 7).unwrap();
        b.add_edge(t2, t3, 1).unwrap();
        b.add_edge(t0, t4, 1).unwrap();
        b.add_edge(t4, t3, 1).unwrap();
        let g = b.build().unwrap();
        let c = coarsen_chains(&g);
        assert_eq!(c.graph.num_tasks(), 4);
        assert_eq!(c.graph.num_edges(), 4);
        // The merged task has comp 2 + 3.
        assert_eq!(c.new_of[t1.0], c.new_of[t2.0]);
        assert_eq!(c.graph.comp(c.new_of[t1.0]), 5);
        // Total computation conserved; internal message (cost 7) dropped.
        assert_eq!(c.graph.total_comp(), g.total_comp());
        assert_eq!(c.graph.total_comm(), g.total_comm() - 7);
    }

    #[test]
    fn permute_reverse_relabels_fig1() {
        let g = fig1();
        let v = g.num_tasks();
        let rev: Vec<TaskId> = (0..v).map(|i| TaskId(v - 1 - i)).collect();
        let p = permute(&g, &rev);
        assert_eq!(p.num_tasks(), v);
        assert_eq!(p.num_edges(), g.num_edges());
        for t in g.tasks() {
            assert_eq!(p.comp(rev[t.0]), g.comp(t));
            for &(s, c) in g.succs(t) {
                assert_eq!(p.edge_comm(rev[t.0], rev[s.0]), Some(c));
            }
        }
        assert_eq!(max_antichain(&p), max_antichain(&g));
        assert_eq!(critical_path(&p), critical_path(&g));
        assert_eq!(p.total_comp(), g.total_comp());
        assert_eq!(p.total_comm(), g.total_comm());
        // Applying the inverse permutation restores the original labels.
        let mut inv = vec![TaskId(0); v];
        for (old, &new) in rev.iter().enumerate() {
            inv[new.0] = TaskId(old);
        }
        let back = permute(&p, &inv);
        for t in g.tasks() {
            assert_eq!(back.comp(t), g.comp(t));
            assert_eq!(back.succs(t), g.succs(t));
        }
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn permute_rejects_non_bijection() {
        let g = gen::chain(3);
        let _ = permute(&g, &[TaskId(0), TaskId(0), TaskId(1)]);
    }

    #[test]
    fn scale_costs_multiplies_everything() {
        let g = fig1();
        let s = scale_costs(&g, 7);
        for t in g.tasks() {
            assert_eq!(s.comp(t), 7 * g.comp(t));
            for &(d, c) in g.succs(t) {
                assert_eq!(s.edge_comm(t, d), Some(7 * c));
            }
        }
        assert_eq!(s.total_comp(), 7 * g.total_comp());
        assert_eq!(critical_path(&s), 7 * critical_path(&g));
        assert_eq!(max_antichain(&s), max_antichain(&g));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn scale_costs_rejects_zero() {
        let _ = scale_costs(&gen::chain(2), 0);
    }

    #[test]
    fn coarsen_keeps_fig1_mostly_intact() {
        // Fig. 1 has no out-1/in-1 links except none — verify by counting.
        let g = fig1();
        let c = coarsen_chains(&g);
        // t2 -> t6 is a chain link (out(t2)=1, in(t6)=1): 8 -> 7 tasks.
        assert_eq!(c.graph.num_tasks(), 7);
        assert_eq!(c.graph.total_comp(), g.total_comp());
    }
}
