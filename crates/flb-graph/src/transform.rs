//! Task-graph transformations used as scheduling pre-passes.
//!
//! * [`transitive_reduction`] — removes edges implied by longer paths.
//!   Compilers commonly emit redundant dependence edges; removing one whose
//!   endpoints stay ordered through an intermediate path preserves every
//!   precedence constraint while deleting its message. Only edges whose
//!   communication cannot *lengthen* any path are safe to drop under
//!   communication-aware scheduling, so reduction here removes an edge
//!   `(u, v)` only when some alternative `u ⇝ v` path exists; the effect on
//!   schedule quality is workload-dependent and measured, not assumed.
//! * [`coarsen_chains`] — merges maximal linear chains (out-degree 1 →
//!   in-degree 1 runs) into single tasks, summing computation and dropping
//!   the internal messages: classic granularity coarsening. Returns the
//!   mapping from old to new task ids.

use crate::{Cost, TaskGraph, TaskGraphBuilder, TaskId};

/// Removes every edge `(u, v)` for which another `u ⇝ v` path exists.
///
/// The result has the same tasks and the same reachability relation (same
/// partial order, hence identical width and a critical path no longer than
/// the original).
///
/// ```
/// use flb_graph::{transform::transitive_reduction, TaskGraphBuilder};
///
/// let mut b = TaskGraphBuilder::new();
/// let (x, y, z) = (b.add_task(1), b.add_task(1), b.add_task(1));
/// b.add_edge(x, y, 1).unwrap();
/// b.add_edge(y, z, 1).unwrap();
/// b.add_edge(x, z, 9).unwrap(); // implied by x -> y -> z
/// let reduced = transitive_reduction(&b.build().unwrap());
/// assert_eq!(reduced.num_edges(), 2);
/// ```
#[must_use]
pub fn transitive_reduction(g: &TaskGraph) -> TaskGraph {
    let v = g.num_tasks();
    // Longest path (in edges) between adjacent pairs suffices: an edge
    // (u, w) is redundant iff some successor s != w of u reaches w.
    // Reachability bitsets, as in width computation.
    let words = v.div_ceil(64);
    let mut reach = vec![vec![0u64; words]; v];
    for &t in g.topological_order().iter().rev() {
        // reach[t] = union over succs s of ({s} ∪ reach[s]).
        let mut row = std::mem::take(&mut reach[t.0]);
        for &(s, _) in g.succs(t) {
            row[s.0 / 64] |= 1 << (s.0 % 64);
            for (a, b) in row.iter_mut().zip(&reach[s.0]) {
                *a |= *b;
            }
        }
        reach[t.0] = row;
    }

    let mut b = TaskGraphBuilder::named(format!("{}-tr", g.name()));
    b.reserve(v, g.num_edges());
    for t in g.tasks() {
        b.add_task(g.comp(t));
    }
    for t in g.tasks() {
        for &(s, c) in g.succs(t) {
            // Redundant iff some *other* direct successor of t reaches s.
            let redundant = g
                .succs(t)
                .iter()
                .any(|&(mid, _)| mid != s && (reach[mid.0][s.0 / 64] >> (s.0 % 64)) & 1 == 1);
            if !redundant {
                b.add_edge(t, s, c).expect("copying edges of a valid graph");
            }
        }
    }
    b.build().expect("subgraph of a DAG is a DAG")
}

/// Result of [`coarsen_chains`].
#[derive(Clone, Debug)]
pub struct Coarsening {
    /// The coarsened graph.
    pub graph: TaskGraph,
    /// `new_of[old]` = id of the coarse task containing the old task.
    pub new_of: Vec<TaskId>,
}

/// Merges maximal linear chains into single tasks.
///
/// A chain link is an edge `(u, v)` with `out_degree(u) == 1` and
/// `in_degree(v) == 1`: `v` can only ever run right after `u`, so any
/// scheduler may treat the pair as one task with summed computation and no
/// internal message. Communication costs of edges entering/leaving the
/// chain are preserved.
#[must_use]
pub fn coarsen_chains(g: &TaskGraph) -> Coarsening {
    let v = g.num_tasks();
    // Head of each chain: a task whose single predecessor doesn't chain to
    // it. Walk chains from heads in topological order.
    let chains_to = |u: TaskId, s: TaskId| g.out_degree(u) == 1 && g.in_degree(s) == 1;
    let mut new_of: Vec<Option<TaskId>> = vec![None; v];
    let mut b = TaskGraphBuilder::named(format!("{}-coarse", g.name()));

    for &t in g.topological_order() {
        if new_of[t.0].is_some() {
            continue; // interior of an already-merged chain
        }
        // t is a chain head (or a solo task): accumulate the chain.
        let mut comp: Cost = g.comp(t);
        let mut members = vec![t];
        let mut cur = t;
        while let [(next, _)] = g.succs(cur) {
            if chains_to(cur, *next) {
                comp += g.comp(*next);
                members.push(*next);
                cur = *next;
            } else {
                break;
            }
        }
        let id = b.add_task(comp);
        for m in members {
            new_of[m.0] = Some(id);
        }
    }

    // Re-add the surviving (cross-chain) edges.
    let new_of: Vec<TaskId> = new_of.into_iter().map(|x| x.expect("covered")).collect();
    for t in g.tasks() {
        for &(s, c) in g.succs(t) {
            let (a, bb) = (new_of[t.0], new_of[s.0]);
            if a != bb {
                b.add_edge(a, bb, c).expect("cross-chain edge");
            }
        }
    }
    Coarsening {
        graph: b.build().expect("contraction of chains keeps acyclicity"),
        new_of,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levels::critical_path;
    use crate::width::max_antichain;
    use crate::{gen, paper::fig1};

    #[test]
    fn reduction_removes_shortcut_edges() {
        // 0 -> 1 -> 2 plus the redundant shortcut 0 -> 2.
        let mut b = TaskGraphBuilder::new();
        let t0 = b.add_task(1);
        let t1 = b.add_task(1);
        let t2 = b.add_task(1);
        b.add_edge(t0, t1, 5).unwrap();
        b.add_edge(t1, t2, 5).unwrap();
        b.add_edge(t0, t2, 99).unwrap();
        let g = b.build().unwrap();
        let r = transitive_reduction(&g);
        assert_eq!(r.num_edges(), 2);
        assert_eq!(r.edge_comm(t0, t2), None);
        assert_eq!(r.edge_comm(t0, t1), Some(5));
    }

    #[test]
    fn reduction_is_idempotent_and_preserves_order() {
        for g in [fig1(), gen::lu(8), gen::laplace(5), gen::fft(3)] {
            let r = transitive_reduction(&g);
            assert!(r.num_edges() <= g.num_edges());
            assert_eq!(max_antichain(&r), max_antichain(&g), "{}", g.name());
            let r2 = transitive_reduction(&r);
            assert_eq!(r2.num_edges(), r.num_edges());
            // Critical path cannot grow (only edges were removed).
            assert!(critical_path(&r) <= critical_path(&g));
        }
    }

    #[test]
    fn fig1_is_already_reduced() {
        let g = fig1();
        assert_eq!(transitive_reduction(&g).num_edges(), g.num_edges());
    }

    #[test]
    fn coarsen_merges_pure_chain() {
        let g = gen::chain(5);
        let c = coarsen_chains(&g);
        assert_eq!(c.graph.num_tasks(), 1);
        assert_eq!(c.graph.num_edges(), 0);
        assert_eq!(c.graph.comp(TaskId(0)), 5);
        assert!(c.new_of.iter().all(|&n| n == TaskId(0)));
    }

    #[test]
    fn coarsen_preserves_branching_structure() {
        // Diamond with a 2-chain on one arm:
        // 0 -> 1 -> 2 -> 3 and 0 -> 4 -> 3; (1,2) is the only chain link.
        let mut b = TaskGraphBuilder::new();
        let t0 = b.add_task(1);
        let t1 = b.add_task(2);
        let t2 = b.add_task(3);
        let t3 = b.add_task(1);
        let t4 = b.add_task(9);
        b.add_edge(t0, t1, 1).unwrap();
        b.add_edge(t1, t2, 7).unwrap();
        b.add_edge(t2, t3, 1).unwrap();
        b.add_edge(t0, t4, 1).unwrap();
        b.add_edge(t4, t3, 1).unwrap();
        let g = b.build().unwrap();
        let c = coarsen_chains(&g);
        assert_eq!(c.graph.num_tasks(), 4);
        assert_eq!(c.graph.num_edges(), 4);
        // The merged task has comp 2 + 3.
        assert_eq!(c.new_of[t1.0], c.new_of[t2.0]);
        assert_eq!(c.graph.comp(c.new_of[t1.0]), 5);
        // Total computation conserved; internal message (cost 7) dropped.
        assert_eq!(c.graph.total_comp(), g.total_comp());
        assert_eq!(c.graph.total_comm(), g.total_comm() - 7);
    }

    #[test]
    fn coarsen_keeps_fig1_mostly_intact() {
        // Fig. 1 has no out-1/in-1 links except none — verify by counting.
        let g = fig1();
        let c = coarsen_chains(&g);
        // t2 -> t6 is a chain link (out(t2)=1, in(t6)=1): 8 -> 7 tasks.
        assert_eq!(c.graph.num_tasks(), 7);
        assert_eq!(c.graph.total_comp(), g.total_comp());
    }
}
