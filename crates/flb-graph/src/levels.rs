//! Static level computations on task graphs.
//!
//! All schedulers in this system consume one or more of these `O(V + E)`
//! quantities:
//!
//! * **bottom level** `bl(t)` — longest path from `t` to any exit task,
//!   *including* `comp(t)` and the communication costs along the path. This
//!   is FLB's and FCP's static priority, and MCP's "longest path from the
//!   current task to any exit task".
//! * **top level** `tl(t)` — longest path from any entry task to `t`,
//!   *excluding* `comp(t)`, including communications. `tl(t) + bl(t)` is the
//!   length of the longest path through `t`; DSC priorities are built on it.
//! * **ALAP** (as-late-as-possible) start time — `CP - bl(t)`, where `CP` is
//!   the critical-path length: MCP's "latest possible start time".
//! * **computation-only** variants (communication ignored) used by lower
//!   bounds.

use crate::{TaskGraph, TaskId, Time};

/// Bottom levels: `bl(t) = comp(t) + max over (t,s) in E of (comm(t,s) + bl(s))`,
/// with `bl(t) = comp(t)` for exit tasks.
///
/// ```
/// use flb_graph::{levels::bottom_levels, paper::fig1};
///
/// // Table 1 of the paper annotates BL(t3) = 12 and BL(t7) = 2.
/// let bl = bottom_levels(&fig1());
/// assert_eq!(bl[3], 12);
/// assert_eq!(bl[7], 2);
/// ```
#[must_use]
pub fn bottom_levels(g: &TaskGraph) -> Vec<Time> {
    let mut bl = vec![0; g.num_tasks()];
    for &t in g.topological_order().iter().rev() {
        let tail = g
            .succs(t)
            .iter()
            .map(|&(s, c)| c + bl[s.0])
            .max()
            .unwrap_or(0);
        bl[t.0] = g.comp(t) + tail;
    }
    bl
}

/// Bottom levels ignoring communication costs:
/// `bl0(t) = comp(t) + max over succ of bl0(s)`.
#[must_use]
pub fn bottom_levels_comp_only(g: &TaskGraph) -> Vec<Time> {
    let mut bl = vec![0; g.num_tasks()];
    for &t in g.topological_order().iter().rev() {
        let tail = g.succs(t).iter().map(|&(s, _)| bl[s.0]).max().unwrap_or(0);
        bl[t.0] = g.comp(t) + tail;
    }
    bl
}

/// Top levels: `tl(t) = max over (p,t) in E of (tl(p) + comp(p) + comm(p,t))`,
/// with `tl(t) = 0` for entry tasks.
#[must_use]
pub fn top_levels(g: &TaskGraph) -> Vec<Time> {
    let mut tl = vec![0; g.num_tasks()];
    for &t in g.topological_order() {
        tl[t.0] = g
            .preds(t)
            .iter()
            .map(|&(p, c)| tl[p.0] + g.comp(p) + c)
            .max()
            .unwrap_or(0);
    }
    tl
}

/// Critical-path length (including communication): the maximum bottom level
/// over entry tasks, equivalently `max_t (tl(t) + bl(t))`.
#[must_use]
pub fn critical_path(g: &TaskGraph) -> Time {
    bottom_levels(g)
        .iter()
        .copied()
        .max()
        .expect("graph is non-empty")
}

/// Critical-path length ignoring communication: a lower bound on the
/// makespan of *any* schedule on *any* number of processors.
#[must_use]
pub fn critical_path_comp_only(g: &TaskGraph) -> Time {
    bottom_levels_comp_only(g)
        .iter()
        .copied()
        .max()
        .expect("graph is non-empty")
}

/// ALAP (latest possible) start times: `alap(t) = CP - bl(t)` where `CP` is
/// [`critical_path`]. Critical tasks have the smallest ALAP times; MCP
/// schedules in ascending ALAP order.
#[must_use]
pub fn alap_times(g: &TaskGraph) -> Vec<Time> {
    let bl = bottom_levels(g);
    let cp = bl.iter().copied().max().expect("graph is non-empty");
    bl.iter().map(|&b| cp - b).collect()
}

/// Depth of each task: number of edges on the longest edge-count path from
/// an entry task (entry tasks have depth 0).
#[must_use]
pub fn depths(g: &TaskGraph) -> Vec<usize> {
    let mut d = vec![0usize; g.num_tasks()];
    for &t in g.topological_order() {
        d[t.0] = g
            .preds(t)
            .iter()
            .map(|&(p, _)| d[p.0] + 1)
            .max()
            .unwrap_or(0);
    }
    d
}

/// Tasks on a critical path (any one maximal path realising
/// [`critical_path`]), in execution order.
#[must_use]
pub fn critical_path_tasks(g: &TaskGraph) -> Vec<TaskId> {
    let bl = bottom_levels(g);
    let cp = bl.iter().copied().max().expect("non-empty");
    // Start from the entry task whose bottom level equals CP (smallest id on
    // ties, for determinism), then greedily follow the successor that
    // preserves the remaining path length.
    let mut cur = g
        .entry_tasks()
        .find(|&t| bl[t.0] == cp)
        .expect("an entry task realises the critical path");
    let mut path = vec![cur];
    loop {
        let need = bl[cur.0] - g.comp(cur);
        let next = g
            .succs(cur)
            .iter()
            .find(|&&(s, c)| c + bl[s.0] == need)
            .map(|&(s, _)| s);
        match next {
            Some(s) => {
                path.push(s);
                cur = s;
            }
            None => break,
        }
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TaskGraphBuilder;

    /// 0 -> {1, 2} -> 3 with asymmetric weights.
    fn diamond() -> TaskGraph {
        let mut b = TaskGraphBuilder::new();
        let t0 = b.add_task(2);
        let t1 = b.add_task(3);
        let t2 = b.add_task(4);
        let t3 = b.add_task(5);
        b.add_edge(t0, t1, 10).unwrap();
        b.add_edge(t0, t2, 1).unwrap();
        b.add_edge(t1, t3, 1).unwrap();
        b.add_edge(t2, t3, 2).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn bottom_levels_diamond() {
        let g = diamond();
        // bl(3) = 5; bl(1) = 3+1+5 = 9; bl(2) = 4+2+5 = 11;
        // bl(0) = 2 + max(10+9, 1+11) = 2+19 = 21.
        assert_eq!(bottom_levels(&g), vec![21, 9, 11, 5]);
    }

    #[test]
    fn bottom_levels_comp_only_diamond() {
        let g = diamond();
        // bl0(3) = 5; bl0(1) = 8; bl0(2) = 9; bl0(0) = 2 + 9 = 11.
        assert_eq!(bottom_levels_comp_only(&g), vec![11, 8, 9, 5]);
    }

    #[test]
    fn top_levels_diamond() {
        let g = diamond();
        // tl(0) = 0; tl(1) = 0+2+10 = 12; tl(2) = 0+2+1 = 3;
        // tl(3) = max(12+3+1, 3+4+2) = 16.
        assert_eq!(top_levels(&g), vec![0, 12, 3, 16]);
    }

    #[test]
    fn critical_paths() {
        let g = diamond();
        assert_eq!(critical_path(&g), 21);
        assert_eq!(critical_path_comp_only(&g), 11);
        // tl + bl is constant (= CP) along the critical path 0 -> 1 -> 3.
        let (tl, bl) = (top_levels(&g), bottom_levels(&g));
        assert_eq!(tl[0] + bl[0], 21);
        assert_eq!(tl[1] + bl[1], 21);
        assert_eq!(tl[3] + bl[3], 21);
    }

    #[test]
    fn alap_diamond() {
        let g = diamond();
        // alap = CP - bl = [0, 12, 10, 16].
        assert_eq!(alap_times(&g), vec![0, 12, 10, 16]);
    }

    #[test]
    fn depths_diamond() {
        let g = diamond();
        assert_eq!(depths(&g), vec![0, 1, 1, 2]);
    }

    #[test]
    fn critical_path_tasks_diamond() {
        let g = diamond();
        assert_eq!(
            critical_path_tasks(&g),
            vec![TaskId(0), TaskId(1), TaskId(3)]
        );
    }

    #[test]
    fn chain_levels() {
        let mut b = TaskGraphBuilder::new();
        let t: Vec<_> = (0..4).map(|_| b.add_task(1)).collect();
        for w in t.windows(2) {
            b.add_edge(w[0], w[1], 5).unwrap();
        }
        let g = b.build().unwrap();
        assert_eq!(bottom_levels(&g), vec![19, 13, 7, 1]);
        assert_eq!(top_levels(&g), vec![0, 6, 12, 18]);
        assert_eq!(critical_path(&g), 19);
        assert_eq!(critical_path_tasks(&g), t);
        assert_eq!(depths(&g), vec![0, 1, 2, 3]);
    }

    #[test]
    fn single_task_levels() {
        let mut b = TaskGraphBuilder::new();
        b.add_task(7);
        let g = b.build().unwrap();
        assert_eq!(bottom_levels(&g), vec![7]);
        assert_eq!(top_levels(&g), vec![0]);
        assert_eq!(critical_path(&g), 7);
        assert_eq!(alap_times(&g), vec![0]);
    }
}
