//! STG — the Standard Task Graph Set format (Kasahara Lab., Waseda
//! University), the de-facto benchmark interchange format of the task-
//! scheduling literature.
//!
//! An STG file is line-oriented:
//!
//! ```text
//! <number of tasks>
//! <id> <comp> <npred> [<pred id> ...]     (one line per task)
//! # trailing comment lines
//! ```
//!
//! Conventionally task 0 is a zero-cost dummy entry and the last task a
//! zero-cost dummy exit; ids are consecutive and predecessors precede their
//! consumers. STG carries **no communication costs** (the set targets
//! no-communication scheduling); [`parse_stg_with_comm`] assigns each edge
//! a cost from a caller-provided function (e.g. a [`crate::costs::Dist`]
//! sample), and [`parse_stg`] uses unit costs — re-weight with
//! [`crate::costs::CostModel::apply`] for CCR-controlled experiments.
//!
//! STG's zero-cost dummy entry/exit tasks are clamped to computation cost 1
//! (this system keeps all costs positive); at benchmark sizes the
//! distortion is far below the cost noise.

use crate::{Cost, GraphError, TaskGraph, TaskGraphBuilder, TaskId};
use std::fmt;

/// Errors from [`parse_stg`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StgError {
    /// A line failed to parse (1-based line number).
    Malformed(usize, String),
    /// The declared task count disagrees with the task lines present.
    CountMismatch {
        /// Count from the header line.
        declared: usize,
        /// Task lines actually parsed.
        found: usize,
    },
    /// The assembled graph failed validation.
    Graph(GraphError),
}

impl fmt::Display for StgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StgError::Malformed(line, msg) => write!(f, "line {line}: {msg}"),
            StgError::CountMismatch { declared, found } => {
                write!(f, "header declares {declared} tasks, file has {found}")
            }
            StgError::Graph(e) => write!(f, "invalid graph: {e}"),
        }
    }
}

impl std::error::Error for StgError {}

impl From<GraphError> for StgError {
    fn from(e: GraphError) -> Self {
        StgError::Graph(e)
    }
}

/// Parses STG text with unit communication costs.
pub fn parse_stg(text: &str) -> Result<TaskGraph, StgError> {
    parse_stg_with_comm(text, |_, _| 1)
}

/// Parses STG text, assigning `comm(src, dst)` to each edge.
pub fn parse_stg_with_comm(
    text: &str,
    mut comm: impl FnMut(TaskId, TaskId) -> Cost,
) -> Result<TaskGraph, StgError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));

    let (lineno, header) = lines
        .next()
        .ok_or_else(|| StgError::Malformed(0, "empty file".into()))?;
    let declared: usize = header
        .split_ascii_whitespace()
        .next()
        .and_then(|x| x.parse().ok())
        .ok_or_else(|| StgError::Malformed(lineno, "expected task count header".into()))?;

    struct Row {
        comp: Cost,
        preds: Vec<usize>,
    }
    // The declared count is untrusted input: a forged header must not
    // size the allocation. Every real row takes at least two bytes of
    // text, so this clamp never shrinks a legitimate preallocation.
    let mut rows: Vec<Row> = Vec::with_capacity(declared.min(text.len() / 2));
    for (lineno, line) in lines {
        let mut it = line.split_ascii_whitespace();
        let parse_num = |s: Option<&str>, what: &str| -> Result<u64, StgError> {
            s.and_then(|x| x.parse().ok())
                .ok_or_else(|| StgError::Malformed(lineno, format!("expected {what}")))
        };
        let id = parse_num(it.next(), "task id")? as usize;
        if id != rows.len() {
            return Err(StgError::Malformed(
                lineno,
                format!(
                    "task ids must be consecutive: expected {}, got {id}",
                    rows.len()
                ),
            ));
        }
        let comp = parse_num(it.next(), "computation cost")?;
        let npred = parse_num(it.next(), "predecessor count")? as usize;
        // Untrusted count: each predecessor needs at least two bytes on
        // the line (digit + separator), so the clamp only rejects lies.
        let mut preds = Vec::with_capacity(npred.min(line.len() / 2));
        for _ in 0..npred {
            preds.push(parse_num(it.next(), "predecessor id")? as usize);
        }
        if it.next().is_some() {
            return Err(StgError::Malformed(lineno, "trailing fields".into()));
        }
        rows.push(Row {
            comp: comp.max(1), // clamp STG's zero-cost dummies
            preds,
        });
    }

    if rows.len() != declared {
        return Err(StgError::CountMismatch {
            declared,
            found: rows.len(),
        });
    }

    let mut b = TaskGraphBuilder::named("stg");
    b.reserve(rows.len(), rows.iter().map(|r| r.preds.len()).sum());
    for row in &rows {
        b.add_task(row.comp);
    }
    for (i, row) in rows.iter().enumerate() {
        let dst = TaskId(i);
        for &p in &row.preds {
            let src = TaskId(p);
            if p >= rows.len() {
                return Err(StgError::Graph(GraphError::UnknownTask(src)));
            }
            b.add_edge(src, dst, comm(src, dst))?;
        }
    }
    Ok(b.build()?)
}

/// Emits a graph in STG syntax (communication costs are not representable
/// and are dropped; a comment records that).
#[must_use]
pub fn to_stg(g: &TaskGraph) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{}", g.num_tasks());
    for t in g.tasks() {
        let _ = write!(out, "{} {} {}", t.0, g.comp(t), g.in_degree(t));
        for &(p, _) in g.preds(t) {
            let _ = write!(out, " {}", p.0);
        }
        out.push('\n');
    }
    let _ = writeln!(
        out,
        "# exported by flb; communication costs omitted (STG has none)"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    const SAMPLE: &str = "\
5
0 0 0
1 4 1 0
2 7 1 0
3 3 2 1 2
4 0 1 3
# a classic 5-node STG with dummy entry/exit
";

    #[test]
    fn parses_sample() {
        let g = parse_stg(SAMPLE).unwrap();
        assert_eq!(g.num_tasks(), 5);
        assert_eq!(g.num_edges(), 5);
        // Zero-cost dummies clamped to 1.
        assert_eq!(g.comp(TaskId(0)), 1);
        assert_eq!(g.comp(TaskId(4)), 1);
        assert_eq!(g.comp(TaskId(2)), 7);
        assert_eq!(g.preds(TaskId(3)).len(), 2);
        assert_eq!(g.entry_tasks().count(), 1);
        assert_eq!(g.exit_tasks().count(), 1);
    }

    #[test]
    fn custom_comm_function() {
        let g = parse_stg_with_comm(SAMPLE, |s, d| (s.0 + d.0) as Cost * 10).unwrap();
        assert_eq!(g.edge_comm(TaskId(1), TaskId(3)), Some(40));
        assert_eq!(g.edge_comm(TaskId(0), TaskId(2)), Some(20));
    }

    #[test]
    fn roundtrip_through_stg() {
        let original = gen::lu(6);
        let text = to_stg(&original);
        let back = parse_stg(&text).unwrap();
        assert_eq!(back.num_tasks(), original.num_tasks());
        assert_eq!(back.num_edges(), original.num_edges());
        for t in original.tasks() {
            assert_eq!(back.comp(t), original.comp(t));
            let p0: Vec<TaskId> = original.preds(t).iter().map(|&(p, _)| p).collect();
            let p1: Vec<TaskId> = back.preds(t).iter().map(|&(p, _)| p).collect();
            assert_eq!(p0, p1);
        }
    }

    #[test]
    fn parse_errors() {
        assert!(matches!(parse_stg(""), Err(StgError::Malformed(0, _))));
        assert!(matches!(parse_stg("abc"), Err(StgError::Malformed(1, _))));
        // Non-consecutive id.
        assert!(matches!(
            parse_stg("2\n0 1 0\n5 1 0"),
            Err(StgError::Malformed(3, _))
        ));
        // Wrong npred arity.
        assert!(matches!(
            parse_stg("2\n0 1 0\n1 1 2 0"),
            Err(StgError::Malformed(3, _))
        ));
        // Trailing fields.
        assert!(matches!(
            parse_stg("1\n0 1 0 7"),
            Err(StgError::Malformed(2, _))
        ));
        // Count mismatch.
        assert!(matches!(
            parse_stg("3\n0 1 0\n1 1 1 0"),
            Err(StgError::CountMismatch {
                declared: 3,
                found: 2
            })
        ));
        // Predecessor id beyond the declared range.
        assert!(matches!(
            parse_stg("2\n0 1 0\n1 1 1 5"),
            Err(StgError::Graph(GraphError::UnknownTask(TaskId(5))))
        ));
        // A backward edge (task 0 depending on task 1) is structurally fine
        // for the parser and must simply build as a DAG.
        assert!(parse_stg("2\n0 1 1 1\n1 1 0").is_ok());
    }

    #[test]
    fn error_display() {
        assert_eq!(
            StgError::CountMismatch {
                declared: 3,
                found: 2
            }
            .to_string(),
            "header declares 3 tasks, file has 2"
        );
    }
}
