//! Whole-graph analysis: the structural numbers that explain scheduling
//! behaviour.
//!
//! [`GraphStats`] bundles everything the experiment logs and the CLI's
//! `info` command report: size, degrees, depth, width, critical paths,
//! inherent-parallelism bounds and Gerasoulis–Yang granularity.

use crate::levels::{critical_path, critical_path_comp_only, depths};
use crate::width::{max_antichain, max_ready_width};
use crate::{Cost, TaskGraph, Time};

/// Summary statistics of a task graph.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of tasks `V`.
    pub tasks: usize,
    /// Number of edges `E`.
    pub edges: usize,
    /// Entry-task count.
    pub entries: usize,
    /// Exit-task count.
    pub exits: usize,
    /// Minimum / mean / maximum out-degree.
    pub out_degree: (usize, f64, usize),
    /// Minimum / mean / maximum in-degree.
    pub in_degree: (usize, f64, usize),
    /// Longest path in edges, plus one (number of "levels").
    pub depth: usize,
    /// Exact width (maximum antichain).
    pub width: usize,
    /// Maximum simultaneous-ready-set size (lower bound on width; the
    /// operative bound for FLB's list sizes).
    pub ready_width: usize,
    /// Total computation (`T_seq`).
    pub total_comp: Time,
    /// Total communication.
    pub total_comm: Cost,
    /// Measured CCR.
    pub ccr: f64,
    /// Critical path including communication.
    pub critical_path: Time,
    /// Critical path with free communication (makespan lower bound).
    pub critical_path_comp: Time,
    /// `T_seq / CP_comp` — the maximum achievable speedup on any machine.
    pub max_speedup: f64,
    /// Gerasoulis–Yang granularity: `min(comp) / max(comm)` (∞ if there
    /// are no edges). Coarse-grained graphs (`g ≥ 1`) lose little to
    /// communication; fine-grained ones (`g < 1`) are scheduling-hard.
    pub granularity: f64,
}

/// Computes [`GraphStats`]. Cost is dominated by the exact width
/// (`O(V·E_tc)` bitset work) — fine up to a few thousand tasks; pass
/// `exact_width = false` to substitute the ready-sweep bound for `width`.
///
/// ```
/// use flb_graph::{analyze::stats, paper::fig1};
///
/// let s = stats(&fig1(), true);
/// assert_eq!((s.tasks, s.edges, s.width), (8, 10, 3));
/// assert!(s.max_speedup < 2.0); // fig1 is nearly serial
/// ```
#[must_use]
pub fn stats(g: &TaskGraph, exact_width: bool) -> GraphStats {
    let v = g.num_tasks();
    let out: Vec<usize> = g.tasks().map(|t| g.out_degree(t)).collect();
    let inn: Vec<usize> = g.tasks().map(|t| g.in_degree(t)).collect();
    let degree_summary = |d: &[usize]| {
        (
            d.iter().copied().min().unwrap_or(0),
            d.iter().sum::<usize>() as f64 / v as f64,
            d.iter().copied().max().unwrap_or(0),
        )
    };
    let ready_width = max_ready_width(g);
    let width = if exact_width {
        max_antichain(g)
    } else {
        ready_width
    };
    let min_comp = g.tasks().map(|t| g.comp(t)).min().unwrap_or(0);
    let max_comm = g
        .tasks()
        .flat_map(|t| g.succs(t).iter().map(|&(_, c)| c))
        .max();
    let cp_comp = critical_path_comp_only(g);

    GraphStats {
        tasks: v,
        edges: g.num_edges(),
        entries: g.entry_tasks().count(),
        exits: g.exit_tasks().count(),
        out_degree: degree_summary(&out),
        in_degree: degree_summary(&inn),
        depth: depths(g).into_iter().max().unwrap_or(0) + 1,
        width,
        ready_width,
        total_comp: g.total_comp(),
        total_comm: g.total_comm(),
        ccr: g.ccr(),
        critical_path: critical_path(g),
        critical_path_comp: cp_comp,
        max_speedup: g.total_comp() as f64 / cp_comp as f64,
        granularity: match max_comm {
            None | Some(0) => f64::INFINITY,
            Some(c) => min_comp as f64 / c as f64,
        },
    }
}

/// The parallelism profile: the ready-set size of each layer of a
/// breadth-first topological sweep — "how many processors could this phase
/// of the program use".
#[must_use]
pub fn parallelism_profile(g: &TaskGraph) -> Vec<usize> {
    let v = g.num_tasks();
    let mut indeg: Vec<usize> = (0..v).map(|i| g.in_degree(crate::TaskId(i))).collect();
    let mut layer: Vec<crate::TaskId> = g.entry_tasks().collect();
    let mut profile = Vec::new();
    while !layer.is_empty() {
        profile.push(layer.len());
        let mut next = Vec::new();
        for t in layer {
            for &(s, _) in g.succs(t) {
                indeg[s.0] -= 1;
                if indeg[s.0] == 0 {
                    next.push(s);
                }
            }
        }
        layer = next;
    }
    profile
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen, paper::fig1};

    #[test]
    fn fig1_stats() {
        let g = fig1();
        let s = stats(&g, true);
        assert_eq!(s.tasks, 8);
        assert_eq!(s.edges, 10);
        assert_eq!(s.entries, 1);
        assert_eq!(s.exits, 1);
        assert_eq!(s.width, 3);
        assert_eq!(s.ready_width, 3);
        assert_eq!(s.depth, 4);
        assert_eq!(s.total_comp, 19);
        assert_eq!(s.total_comm, 17);
        assert_eq!(s.critical_path, 15);
        assert_eq!(s.critical_path_comp, 10);
        assert!((s.max_speedup - 1.9).abs() < 1e-12);
        // min comp 2, max comm 4 -> granularity 0.5 (fine-grained).
        assert!((s.granularity - 0.5).abs() < 1e-12);
        assert_eq!(s.out_degree.2, 3); // t0 fans out to 3
        assert_eq!(s.in_degree.2, 3); // t7 joins 3
    }

    #[test]
    fn width_fallback_uses_ready_sweep() {
        let g = gen::laplace(4);
        let exact = stats(&g, true);
        let cheap = stats(&g, false);
        assert_eq!(exact.width, 4);
        assert_eq!(cheap.width, cheap.ready_width);
        assert!(cheap.width <= exact.width);
    }

    #[test]
    fn granularity_edge_cases() {
        let s = stats(&gen::independent(3), true);
        assert!(s.granularity.is_infinite()); // no edges
    }

    #[test]
    fn profile_shapes() {
        assert_eq!(parallelism_profile(&gen::chain(4)), vec![1, 1, 1, 1]);
        assert_eq!(parallelism_profile(&gen::independent(5)), vec![5]);
        // Diamond lattice widens then narrows.
        let p = parallelism_profile(&gen::laplace(3));
        assert_eq!(p, vec![1, 2, 3, 2, 1]);
        // Profile always sums to V.
        for g in [gen::lu(6), gen::fft(3), gen::stencil(3, 4)] {
            assert_eq!(parallelism_profile(&g).iter().sum::<usize>(), g.num_tasks());
        }
    }
}
