//! Graph composition combinators: build large programs from sub-programs.
//!
//! Parallel programs are rarely authored as flat DAGs — they are phases
//! ([`series`]), independent kernels ([`parallel`]), and replicated
//! sub-structures ([`replicate`]). The combinators here compose validated
//! [`TaskGraph`]s into validated task graphs, re-indexing tasks
//! (left-operand ids first) and returning the id mappings where useful.

use crate::{Cost, GraphError, TaskGraph, TaskGraphBuilder, TaskId};

/// Copies `g` into `b`, returning the id offset mapping (old id + offset).
fn splice(b: &mut TaskGraphBuilder, g: &TaskGraph) -> usize {
    let offset = b.num_tasks();
    for t in g.tasks() {
        b.add_task(g.comp(t));
    }
    for t in g.tasks() {
        for &(s, c) in g.succs(t) {
            b.add_edge(TaskId(t.0 + offset), TaskId(s.0 + offset), c)
                .expect("copied edge of a valid graph");
        }
    }
    offset
}

/// Sequential composition: every exit task of `first` feeds every entry
/// task of `second` with communication cost `comm` (a full barrier with
/// data exchange). Ids of `first` come first, then `second`'s shifted by
/// `first.num_tasks()`.
///
/// ```
/// use flb_graph::{compose::series, gen};
///
/// // FFT phase feeding a stencil sweep across a cost-10 exchange.
/// let program = series(&gen::fft(3), &gen::stencil(4, 3), 10).unwrap();
/// assert_eq!(
///     program.num_tasks(),
///     gen::fft(3).num_tasks() + gen::stencil(4, 3).num_tasks()
/// );
/// ```
pub fn series(first: &TaskGraph, second: &TaskGraph, comm: Cost) -> Result<TaskGraph, GraphError> {
    let mut b = TaskGraphBuilder::named(format!("{}>{}", first.name(), second.name()));
    b.reserve(
        first.num_tasks() + second.num_tasks(),
        first.num_edges() + second.num_edges(),
    );
    splice(&mut b, first);
    let off = splice(&mut b, second);
    for e in first.exit_tasks() {
        for s in second.entry_tasks() {
            b.add_edge(e, TaskId(s.0 + off), comm)?;
        }
    }
    b.build()
}

/// Parallel composition: the disjoint union of `a` and `b` (independent
/// phases). Ids of `a` first, then `b`'s shifted by `a.num_tasks()`.
pub fn parallel(a: &TaskGraph, b: &TaskGraph) -> Result<TaskGraph, GraphError> {
    let mut builder = TaskGraphBuilder::named(format!("{}|{}", a.name(), b.name()));
    builder.reserve(a.num_tasks() + b.num_tasks(), a.num_edges() + b.num_edges());
    splice(&mut builder, a);
    splice(&mut builder, b);
    builder.build()
}

/// Fork–join replication: a `fork` task fans out to `copies` instances of
/// `body`, whose exits all join into a `join` task. `fork`/`join` have the
/// given computation costs; all fan edges carry cost `comm`.
pub fn replicate(
    body: &TaskGraph,
    copies: usize,
    fork_comp: Cost,
    join_comp: Cost,
    comm: Cost,
) -> Result<TaskGraph, GraphError> {
    assert!(copies > 0, "replicate needs at least one copy");
    let mut b = TaskGraphBuilder::named(format!("{}x{copies}", body.name()));
    let fork = b.add_task(fork_comp);
    let mut offsets = Vec::with_capacity(copies);
    for _ in 0..copies {
        offsets.push(splice(&mut b, body));
    }
    let join = b.add_task(join_comp);
    for off in offsets {
        for e in body.entry_tasks() {
            b.add_edge(fork, TaskId(e.0 + off), comm)?;
        }
        for x in body.exit_tasks() {
            b.add_edge(TaskId(x.0 + off), join, comm)?;
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::width::max_antichain;
    use crate::{gen, paper::fig1};

    #[test]
    fn series_connects_exits_to_entries() {
        let a = gen::fork_join(3, 1); // 1 entry, 1 exit, 5 tasks
        let c = gen::chain(2);
        let g = series(&a, &c, 7).unwrap();
        assert_eq!(g.num_tasks(), 7);
        // One new edge (single exit x single entry) with cost 7.
        assert_eq!(g.num_edges(), a.num_edges() + c.num_edges() + 1);
        assert_eq!(g.entry_tasks().count(), 1);
        assert_eq!(g.exit_tasks().count(), 1);
        // The bridge edge carries the requested cost.
        let exit_a = a.exit_tasks().next().unwrap();
        let entry_c = c.entry_tasks().next().unwrap();
        assert_eq!(
            g.edge_comm(exit_a, TaskId(entry_c.0 + a.num_tasks())),
            Some(7)
        );
    }

    #[test]
    fn series_of_multi_exit_graphs_is_a_full_bipartite_bridge() {
        let a = gen::independent(3);
        let c = gen::independent(2);
        let g = series(&a, &c, 1).unwrap();
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.entry_tasks().count(), 3);
        assert_eq!(g.exit_tasks().count(), 2);
    }

    #[test]
    fn parallel_is_disjoint_union() {
        let a = fig1();
        let c = gen::chain(4);
        let g = parallel(&a, &c).unwrap();
        assert_eq!(g.num_tasks(), 12);
        assert_eq!(g.num_edges(), a.num_edges() + c.num_edges());
        assert_eq!(max_antichain(&g), max_antichain(&a) + 1);
        assert_eq!(g.total_comp(), a.total_comp() + c.total_comp());
    }

    #[test]
    fn replicate_fans_out_and_joins() {
        let body = gen::chain(3);
        let g = replicate(&body, 4, 2, 5, 9).unwrap();
        assert_eq!(g.num_tasks(), 4 * 3 + 2);
        assert_eq!(g.entry_tasks().count(), 1);
        assert_eq!(g.exit_tasks().count(), 1);
        assert_eq!(max_antichain(&g), 4);
        // Fork has out-degree 4; join in-degree 4.
        let fork = g.entry_tasks().next().unwrap();
        assert_eq!(g.out_degree(fork), 4);
        assert_eq!(g.comp(fork), 2);
        let join = g.exit_tasks().next().unwrap();
        assert_eq!(g.in_degree(join), 4);
        assert_eq!(g.comp(join), 5);
    }

    #[test]
    fn compositions_remain_valid_dags() {
        let a = gen::lu(5);
        let b = gen::fft(3);
        let s = series(&a, &b, 3).unwrap();
        let p = parallel(&s, &gen::laplace(3)).unwrap();
        let r = replicate(&p, 2, 1, 1, 1).unwrap();
        // Builder validation already ran; spot-check the topological order.
        let order = r.topological_order();
        assert_eq!(order.len(), r.num_tasks());
    }
}
