//! Random cost models with controlled communication-to-computation ratio.
//!
//! The paper's methodology (§6): fix a topology, then draw computation and
//! communication costs i.i.d. from a distribution whose means realise the
//! target CCR; five seeded instances per configuration.
//!
//! A note on "uniform distribution with unit coefficient of variation": a
//! nonnegative uniform distribution cannot reach CV = 1 (its maximum is
//! `1/√3 ≈ 0.577`, attained by `U(0, 2μ)`). We therefore provide both the
//! common reading `U(0, 2μ)` ([`Dist::UniformMean`]) and an exponential
//! distribution with CV exactly 1 ([`Dist::Exponential`]); the experiment
//! harness records which one was used (see DESIGN.md).

use crate::{Cost, TaskGraph, TaskGraphBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A distribution over integer costs (all samples are ≥ 1 so no task or
/// message is ever free).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Dist {
    /// Every sample equals the given constant.
    Constant(Cost),
    /// Discrete uniform on `[1, 2·mean - 1]` — integer analogue of
    /// `U(0, 2μ)`, mean exactly `mean`, CV ≈ `1/√3`.
    UniformMean(Cost),
    /// Discrete uniform on `[lo, hi]` (inclusive).
    UniformRange(Cost, Cost),
    /// Exponential with the given mean (rounded to an integer, min 1):
    /// CV ≈ 1, the literal reading of the paper's "unit coefficient of
    /// variation".
    Exponential(Cost),
}

impl Dist {
    /// Draws one sample.
    pub fn sample(&self, rng: &mut impl Rng) -> Cost {
        match *self {
            Dist::Constant(c) => c.max(1),
            Dist::UniformMean(mean) => {
                let mean = mean.max(1);
                rng.random_range(1..=2 * mean - 1)
            }
            Dist::UniformRange(lo, hi) => {
                let lo = lo.max(1);
                let hi = hi.max(lo);
                rng.random_range(lo..=hi)
            }
            Dist::Exponential(mean) => {
                let mean = mean.max(1) as f64;
                let u: f64 = rng.random_range(f64::EPSILON..1.0);
                let x = -mean * u.ln();
                (x.round() as Cost).max(1)
            }
        }
    }

    /// The distribution's mean (exact for constant/uniform, nominal for
    /// exponential before integer rounding).
    #[must_use]
    pub fn mean(&self) -> f64 {
        match *self {
            Dist::Constant(c) => c.max(1) as f64,
            Dist::UniformMean(mean) => mean.max(1) as f64,
            Dist::UniformRange(lo, hi) => (lo.max(1) + hi.max(lo)) as f64 / 2.0,
            Dist::Exponential(mean) => mean.max(1) as f64,
        }
    }

    /// Same distribution family re-centred on the given mean (used to
    /// derive the communication distribution from the computation one).
    #[must_use]
    pub fn with_mean(&self, mean: Cost) -> Dist {
        match *self {
            Dist::Constant(_) => Dist::Constant(mean),
            Dist::UniformMean(_) => Dist::UniformMean(mean),
            Dist::UniformRange(lo, hi) => {
                // Preserve the relative half-width around the new mean.
                let old_mean = (lo + hi) as f64 / 2.0;
                let half = (hi - lo) as f64 / 2.0;
                let ratio = if old_mean > 0.0 { half / old_mean } else { 0.0 };
                let new_half = (mean as f64 * ratio).round() as Cost;
                Dist::UniformRange(mean.saturating_sub(new_half).max(1), mean + new_half)
            }
            Dist::Exponential(_) => Dist::Exponential(mean),
        }
    }
}

/// A complete cost model: computation distribution plus a target CCR from
/// which the communication distribution is derived.
///
/// ```
/// use flb_graph::costs::CostModel;
/// use flb_graph::gen::Family;
///
/// let topology = Family::Stencil.topology(400);
/// let g = CostModel::paper_default(5.0).apply(&topology, 42);
/// assert_eq!(g.num_tasks(), topology.num_tasks());
/// assert!((g.ccr() - 5.0).abs() < 1.0); // communication-dominated
/// ```
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Distribution of task computation costs.
    pub comp: Dist,
    /// Target communication-to-computation ratio; the communication
    /// distribution is `comp` re-scaled to mean `ccr · mean(comp)`.
    pub ccr: f64,
}

impl CostModel {
    /// The paper's default: mean computation cost 100 (so CCR 0.2 still
    /// yields integer communication means), uniform costs.
    #[must_use]
    pub fn paper_default(ccr: f64) -> Self {
        CostModel {
            comp: Dist::UniformMean(100),
            ccr,
        }
    }

    /// The communication-cost distribution implied by this model.
    #[must_use]
    pub fn comm_dist(&self) -> Dist {
        let mean = (self.comp.mean() * self.ccr).round().max(1.0) as Cost;
        self.comp.with_mean(mean)
    }

    /// Re-weights `topology`: same tasks and edges, with computation and
    /// communication costs drawn from this model. Deterministic in `seed`.
    #[must_use]
    pub fn apply(&self, topology: &TaskGraph, seed: u64) -> TaskGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let comm_dist = self.comm_dist();
        let mut b = TaskGraphBuilder::named(format!("{}-ccr{}-s{seed}", topology.name(), self.ccr));
        b.reserve(topology.num_tasks(), topology.num_edges());
        for _ in topology.tasks() {
            b.add_task(self.comp.sample(&mut rng));
        }
        for t in topology.tasks() {
            for &(s, _) in topology.succs(t) {
                b.add_edge(t, s, comm_dist.sample(&mut rng))
                    .expect("copying edges of a valid graph");
            }
        }
        b.build().expect("re-weighting preserves acyclicity")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_mean(d: Dist, n: usize) -> f64 {
        let mut rng = StdRng::seed_from_u64(7);
        (0..n).map(|_| d.sample(&mut rng) as f64).sum::<f64>() / n as f64
    }

    #[test]
    fn constant_dist() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(Dist::Constant(5).sample(&mut rng), 5);
        assert_eq!(Dist::Constant(0).sample(&mut rng), 1); // clamped
        assert_eq!(Dist::Constant(5).mean(), 5.0);
    }

    #[test]
    fn uniform_mean_has_right_mean_and_range() {
        let d = Dist::UniformMean(100);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = d.sample(&mut rng);
            assert!((1..=199).contains(&x));
        }
        let m = sample_mean(d, 20_000);
        assert!((m - 100.0).abs() < 2.0, "uniform mean drifted: {m}");
    }

    #[test]
    fn uniform_range_degenerate_bounds() {
        // lo clamped to 1, hi clamped up to lo: both degenerate inputs
        // produce valid single-point distributions.
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(Dist::UniformRange(0, 0).sample(&mut rng), 1);
        assert_eq!(Dist::UniformRange(9, 3).sample(&mut rng), 9);
        assert_eq!(Dist::UniformRange(9, 3).mean(), 9.0);
    }

    #[test]
    fn uniform_range_respects_bounds() {
        let d = Dist::UniformRange(10, 20);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = d.sample(&mut rng);
            assert!((10..=20).contains(&x));
        }
        assert_eq!(d.mean(), 15.0);
    }

    #[test]
    fn exponential_mean_and_cv() {
        let d = Dist::Exponential(100);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng) as f64).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        let cv = var.sqrt() / mean;
        assert!((mean - 100.0).abs() < 3.0, "exp mean drifted: {mean}");
        assert!((cv - 1.0).abs() < 0.05, "exp CV drifted: {cv}");
    }

    #[test]
    fn with_mean_rescales() {
        assert_eq!(Dist::UniformMean(100).with_mean(20), Dist::UniformMean(20));
        assert_eq!(Dist::Constant(3).with_mean(9), Dist::Constant(9));
        assert_eq!(Dist::Exponential(5).with_mean(50), Dist::Exponential(50));
        // UniformRange keeps its relative width: [50,150] mean 100 -> mean 10
        // gives half-width 5.
        assert_eq!(
            Dist::UniformRange(50, 150).with_mean(10),
            Dist::UniformRange(5, 15)
        );
    }

    #[test]
    fn cost_model_hits_target_ccr() {
        let topo = gen::stencil(20, 20);
        for &ccr in &[0.2, 1.0, 5.0] {
            let model = CostModel::paper_default(ccr);
            let g = model.apply(&topo, 11);
            let measured = g.ccr();
            assert!(
                (measured - ccr).abs() / ccr < 0.15,
                "target CCR {ccr}, measured {measured}"
            );
        }
    }

    #[test]
    fn apply_is_deterministic_and_preserves_topology() {
        let topo = gen::lu(8);
        let model = CostModel::paper_default(5.0);
        let a = model.apply(&topo, 99);
        let b = model.apply(&topo, 99);
        assert_eq!(a.num_tasks(), topo.num_tasks());
        assert_eq!(a.num_edges(), topo.num_edges());
        for t in a.tasks() {
            assert_eq!(a.comp(t), b.comp(t));
            assert_eq!(a.succs(t), b.succs(t));
            // Same adjacency as the topology (costs aside).
            let succ_a: Vec<_> = a.succs(t).iter().map(|&(s, _)| s).collect();
            let succ_t: Vec<_> = topo.succs(t).iter().map(|&(s, _)| s).collect();
            assert_eq!(succ_a, succ_t);
        }
        let c = model.apply(&topo, 100);
        assert!(
            a.tasks().any(|t| a.comp(t) != c.comp(t)),
            "different seeds must give different costs"
        );
    }

    #[test]
    fn comm_dist_mean_scales_with_ccr() {
        let model = CostModel::paper_default(0.2);
        assert_eq!(model.comm_dist(), Dist::UniformMean(20));
        let model5 = CostModel::paper_default(5.0);
        assert_eq!(model5.comm_dist(), Dist::UniformMean(500));
    }
}
