//! Graphviz DOT export for task graphs.

use crate::TaskGraph;
use std::fmt::Write as _;

/// Renders the graph in Graphviz DOT syntax. Node labels show the task id
/// and computation cost; edge labels show the communication cost.
#[must_use]
pub fn to_dot(g: &TaskGraph) -> String {
    let mut out = String::new();
    let name = if g.name().is_empty() {
        "taskgraph"
    } else {
        g.name()
    };
    // DOT identifiers cannot contain '-' unless quoted.
    writeln!(out, "digraph \"{name}\" {{").expect("write to string");
    writeln!(out, "  rankdir=TB;").expect("write to string");
    for t in g.tasks() {
        writeln!(out, "  t{} [label=\"t{}\\n{}\"];", t.0, t.0, g.comp(t)).expect("write");
    }
    for t in g.tasks() {
        for &(s, c) in g.succs(t) {
            writeln!(out, "  t{} -> t{} [label=\"{}\"];", t.0, s.0, c).expect("write");
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::fig1;
    use crate::TaskGraphBuilder;

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let g = fig1();
        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph \"paper-fig1\" {"));
        for i in 0..8 {
            assert!(dot.contains(&format!("t{i} [label=")));
        }
        assert!(dot.contains("t0 -> t2 [label=\"4\"];"));
        assert!(dot.contains("t5 -> t7 [label=\"3\"];"));
        assert!(dot.ends_with("}\n"));
        assert_eq!(dot.matches(" -> ").count(), g.num_edges());
    }

    #[test]
    fn unnamed_graph_gets_default_name() {
        let mut b = TaskGraphBuilder::new();
        b.add_task(1);
        let g = b.build().unwrap();
        assert!(to_dot(&g).starts_with("digraph \"taskgraph\" {"));
    }
}
