//! Property-based tests over generators, levels and width.

use flb_graph::costs::{CostModel, Dist};
use flb_graph::gen::{self, Family, RandomLayeredSpec};
use flb_graph::levels::{
    alap_times, bottom_levels, bottom_levels_comp_only, critical_path, critical_path_comp_only,
    critical_path_tasks, depths, top_levels,
};
use flb_graph::width::{max_antichain, max_ready_width};
use flb_graph::{TaskGraph, TaskId};
use proptest::prelude::*;

/// Strategy producing a diverse mix of small task graphs.
fn arb_graph() -> impl Strategy<Value = TaskGraph> {
    prop_oneof![
        (1usize..12).prop_map(gen::chain),
        (1usize..12).prop_map(gen::independent),
        (1usize..8, 1usize..5).prop_map(|(w, s)| gen::fork_join(w, s)),
        (2usize..20).prop_map(gen::lu),
        (1usize..7).prop_map(gen::laplace),
        (1usize..6, 1usize..6).prop_map(|(p, s)| gen::stencil(p, s)),
        (1u32..5).prop_map(gen::fft),
        (1usize..4, 0u32..4).prop_map(|(a, h)| gen::out_tree(a, h)),
        (2usize..4, 0u32..4).prop_map(|(a, h)| gen::in_tree(a, h)),
        (10usize..60, 2usize..6, any::<u64>()).prop_map(|(v, l, seed)| {
            gen::random_layered(
                &RandomLayeredSpec {
                    tasks: v,
                    layers: l,
                    edge_prob: 0.3,
                    max_skip: 2,
                },
                seed,
            )
        }),
        (2usize..25, any::<u64>()).prop_map(|(v, seed)| gen::random_dag(v, 0.25, seed)),
    ]
}

/// `order` must list every task exactly once with all predecessors earlier.
fn assert_topological(g: &TaskGraph, order: &[TaskId]) {
    assert_eq!(order.len(), g.num_tasks());
    let mut pos = vec![usize::MAX; g.num_tasks()];
    for (i, &t) in order.iter().enumerate() {
        pos[t.0] = i;
    }
    for t in g.tasks() {
        assert_ne!(pos[t.0], usize::MAX, "task {t} missing from order");
        for &(s, _) in g.succs(t) {
            assert!(pos[t.0] < pos[s.0], "edge {t} -> {s} violates order");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn generated_graphs_are_valid_dags(g in arb_graph()) {
        assert_topological(&g, g.topological_order());
        // Edge count consistency between the two CSR directions.
        let out_sum: usize = g.tasks().map(|t| g.out_degree(t)).sum();
        let in_sum: usize = g.tasks().map(|t| g.in_degree(t)).sum();
        prop_assert_eq!(out_sum, g.num_edges());
        prop_assert_eq!(in_sum, g.num_edges());
        // Every graph has at least one entry and one exit.
        prop_assert!(g.entry_tasks().next().is_some());
        prop_assert!(g.exit_tasks().next().is_some());
    }

    #[test]
    fn level_invariants(g in arb_graph()) {
        let bl = bottom_levels(&g);
        let bl0 = bottom_levels_comp_only(&g);
        let tl = top_levels(&g);
        let alap = alap_times(&g);
        let cp = critical_path(&g);
        let d = depths(&g);

        for t in g.tasks() {
            // Bottom level dominates its comp-only variant and comp itself.
            prop_assert!(bl[t.0] >= bl0[t.0]);
            prop_assert!(bl0[t.0] >= g.comp(t));
            // tl + bl never exceeds the critical path; ALAP >= tl is false in
            // general, but alap + bl == cp by construction.
            prop_assert!(tl[t.0] + bl[t.0] <= cp);
            prop_assert_eq!(alap[t.0] + bl[t.0], cp);
            // Monotonicity along edges.
            for &(s, c) in g.succs(t) {
                prop_assert!(bl[t.0] >= g.comp(t) + c + bl[s.0]);
                prop_assert!(tl[s.0] >= tl[t.0] + g.comp(t) + c);
                prop_assert!(d[s.0] > d[t.0]);
            }
        }
        prop_assert!(cp >= critical_path_comp_only(&g));
        prop_assert!(cp <= g.total_comp() + g.total_comm());
    }

    #[test]
    fn critical_path_tasks_realise_cp(g in arb_graph()) {
        let path = critical_path_tasks(&g);
        prop_assert!(!path.is_empty());
        // Path length (comp + comm along it) equals the critical path.
        let mut len = 0;
        for w in path.windows(2) {
            len += g.comp(w[0]) + g.edge_comm(w[0], w[1]).expect("consecutive path edge");
        }
        len += g.comp(*path.last().unwrap());
        prop_assert_eq!(len, critical_path(&g));
        // Starts at an entry, ends at an exit.
        prop_assert_eq!(g.in_degree(path[0]), 0);
        prop_assert_eq!(g.out_degree(*path.last().unwrap()), 0);
    }

    /// The Dilworth/Hopcroft–Karp width agrees with a brute-force maximum
    /// antichain found by subset enumeration (small graphs only).
    #[test]
    fn exact_width_matches_brute_force(
        v in 2usize..12,
        p in 0.1f64..0.6,
        seed in any::<u64>(),
    ) {
        let g = gen::random_dag(v, p, seed);
        // Reachability by DFS per node.
        let mut reach = vec![vec![false; v]; v];
        for s in g.tasks() {
            let mut stack = vec![s];
            while let Some(u) = stack.pop() {
                for &(w, _) in g.succs(u) {
                    if !reach[s.0][w.0] {
                        reach[s.0][w.0] = true;
                        stack.push(w);
                    }
                }
            }
        }
        let mut best = 0usize;
        for mask in 1u32..(1 << v) {
            let members: Vec<usize> = (0..v).filter(|i| mask & (1 << i) != 0).collect();
            let antichain = members.iter().all(|&a| {
                members.iter().all(|&b| a == b || (!reach[a][b] && !reach[b][a]))
            });
            if antichain {
                best = best.max(members.len());
            }
        }
        prop_assert_eq!(max_antichain(&g), best);
    }

    #[test]
    fn width_bounds(g in arb_graph()) {
        let w = max_antichain(&g);
        let rw = max_ready_width(&g);
        prop_assert!(w >= 1);
        prop_assert!(rw >= 1);
        prop_assert!(rw <= w, "ready width {rw} exceeded antichain {w}");
        prop_assert!(w <= g.num_tasks());
    }

    #[test]
    fn reweighting_preserves_structure(
        topo in arb_graph(),
        seed in any::<u64>(),
        ccr in prop_oneof![Just(0.2), Just(1.0), Just(5.0)],
    ) {
        let model = CostModel { comp: Dist::UniformMean(50), ccr };
        let g = model.apply(&topo, seed);
        prop_assert_eq!(g.num_tasks(), topo.num_tasks());
        prop_assert_eq!(g.num_edges(), topo.num_edges());
        for t in g.tasks() {
            prop_assert!(g.comp(t) >= 1);
            for (&(s, c), &(s0, _)) in g.succs(t).iter().zip(topo.succs(t)) {
                prop_assert_eq!(s, s0);
                prop_assert!(c >= 1);
            }
        }
    }

    #[test]
    fn serde_and_text_roundtrip(g in arb_graph()) {
        use flb_graph::serialize::{parse_text, to_text, TaskGraphData};
        let text = to_text(&g);
        let g2 = parse_text(&text).unwrap();
        prop_assert_eq!(TaskGraphData::from(&g), TaskGraphData::from(&g2));
    }

    #[test]
    fn transitive_reduction_preserves_order(g in arb_graph()) {
        use flb_graph::transform::transitive_reduction;
        let r = transitive_reduction(&g);
        prop_assert_eq!(r.num_tasks(), g.num_tasks());
        prop_assert!(r.num_edges() <= g.num_edges());
        // The partial order is untouched: identical maximum antichain, and
        // every removed edge is still implied (depth strictly increases
        // along every original edge).
        prop_assert_eq!(max_antichain(&r), max_antichain(&g));
        let d = depths(&r);
        for t in g.tasks() {
            for &(s, _) in g.succs(t) {
                prop_assert!(d[s.0] > d[t.0], "original edge {t} -> {s} lost");
            }
        }
        // Idempotent.
        prop_assert_eq!(transitive_reduction(&r).num_edges(), r.num_edges());
    }

    #[test]
    fn chain_coarsening_conserves_work(g in arb_graph()) {
        use flb_graph::transform::coarsen_chains;
        let c = coarsen_chains(&g);
        prop_assert_eq!(c.graph.total_comp(), g.total_comp());
        prop_assert!(c.graph.num_tasks() <= g.num_tasks());
        prop_assert!(c.graph.total_comm() <= g.total_comm());
        // The mapping covers every old task and respects edges.
        prop_assert_eq!(c.new_of.len(), g.num_tasks());
        let d = depths(&c.graph);
        for t in g.tasks() {
            for &(s, _) in g.succs(t) {
                let (a, b) = (c.new_of[t.0], c.new_of[s.0]);
                if a != b {
                    prop_assert!(d[b.0] > d[a.0], "cross-chain edge order lost");
                }
            }
        }
        // Width can only shrink.
        prop_assert!(max_antichain(&c.graph) <= max_antichain(&g));
        // Coarsening is a fixpoint: no chain links remain.
        let again = coarsen_chains(&c.graph);
        prop_assert_eq!(again.graph.num_tasks(), c.graph.num_tasks());
    }

    #[test]
    fn family_topologies_scale(v in 50usize..500) {
        for fam in Family::ALL {
            let g = fam.topology(v);
            // Within a factor of 2.5 of the request (FFT is the coarsest).
            let n = g.num_tasks();
            prop_assert!(n * 2 >= v / 2, "{}: {n} tasks for target {v}", fam.name());
            prop_assert!(n <= v * 3, "{}: {n} tasks for target {v}", fam.name());
        }
    }
}
