//! Property tests for the graph transformations and composition
//! combinators: the algebra the metamorphic conformance checks rely on.
//!
//! * Relabeling ([`transform::permute`]) is an isomorphism — every analysis
//!   quantity is preserved (per-task ones pull back through the map).
//! * Uniform cost scaling ([`transform::scale_costs`]) scales every
//!   time-valued quantity by exactly `k` and touches nothing structural.
//! * [`compose::series`] / [`compose::parallel`] / [`compose::replicate`]
//!   obey closed-form width and critical-path algebra.

use flb_graph::levels::{bottom_levels, critical_path, critical_path_comp_only, depths};
use flb_graph::width::max_antichain;
use flb_graph::{compose, gen, transform, TaskGraph, TaskId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn arb_graph() -> impl Strategy<Value = TaskGraph> {
    use flb_graph::costs::CostModel;
    let topo = prop_oneof![
        (1usize..8).prop_map(gen::chain),
        (1usize..8).prop_map(gen::independent),
        (1usize..6, 1usize..4).prop_map(|(w, s)| gen::fork_join(w, s)),
        (2usize..10).prop_map(gen::lu),
        (1usize..5).prop_map(gen::laplace),
        (1u32..4).prop_map(gen::fft),
        (2usize..20, any::<u64>()).prop_map(|(v, seed)| gen::random_dag(v, 0.3, seed)),
    ];
    (
        topo,
        prop_oneof![Just(0.5), Just(1.0), Just(5.0)],
        any::<u64>(),
    )
        .prop_map(|(t, ccr, seed)| CostModel::paper_default(ccr).apply(&t, seed))
}

/// A random permutation of `0..v` as a `new_id_of` table.
fn random_permutation(v: usize, seed: u64) -> Vec<TaskId> {
    let mut ids: Vec<TaskId> = (0..v).map(TaskId).collect();
    ids.shuffle(&mut StdRng::seed_from_u64(seed));
    ids
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Relabeling preserves every analysis quantity; per-task quantities
    /// pull back through the permutation.
    #[test]
    fn relabeling_preserves_analysis(g in arb_graph(), seed in any::<u64>()) {
        let new_id_of = random_permutation(g.num_tasks(), seed);
        let p = transform::permute(&g, &new_id_of);

        prop_assert_eq!(p.num_tasks(), g.num_tasks());
        prop_assert_eq!(p.num_edges(), g.num_edges());
        prop_assert_eq!(p.total_comp(), g.total_comp());
        prop_assert_eq!(p.total_comm(), g.total_comm());
        prop_assert_eq!(critical_path(&p), critical_path(&g));
        prop_assert_eq!(critical_path_comp_only(&p), critical_path_comp_only(&g));
        prop_assert_eq!(max_antichain(&p), max_antichain(&g));

        let (bl_g, bl_p) = (bottom_levels(&g), bottom_levels(&p));
        let (d_g, d_p) = (depths(&g), depths(&p));
        for t in g.tasks() {
            let n = new_id_of[t.0];
            prop_assert_eq!(p.comp(n), g.comp(t));
            prop_assert_eq!(bl_p[n.0], bl_g[t.0]);
            prop_assert_eq!(d_p[n.0], d_g[t.0]);
            for &(s, c) in g.succs(t) {
                prop_assert_eq!(p.edge_comm(n, new_id_of[s.0]), Some(c));
            }
        }

        // Applying the inverse permutation recovers the original.
        let mut inverse = vec![TaskId(0); new_id_of.len()];
        for (old, &new) in new_id_of.iter().enumerate() {
            inverse[new.0] = TaskId(old);
        }
        let back = transform::permute(&p, &inverse);
        for t in g.tasks() {
            prop_assert_eq!(back.comp(t), g.comp(t));
            prop_assert_eq!(back.succs(t), g.succs(t));
        }
    }

    /// Uniform scaling multiplies every time quantity by `k` exactly
    /// (all-integer arithmetic) and preserves structure.
    #[test]
    fn scaling_scales_all_time_quantities(g in arb_graph(), k in 1u64..8) {
        let s = transform::scale_costs(&g, k);
        prop_assert_eq!(s.num_tasks(), g.num_tasks());
        prop_assert_eq!(s.num_edges(), g.num_edges());
        prop_assert_eq!(s.total_comp(), g.total_comp() * k);
        prop_assert_eq!(s.total_comm(), g.total_comm() * k);
        prop_assert_eq!(critical_path(&s), critical_path(&g) * k);
        prop_assert_eq!(
            critical_path_comp_only(&s),
            critical_path_comp_only(&g) * k
        );
        prop_assert_eq!(max_antichain(&s), max_antichain(&g));
        let (bl_g, bl_s) = (bottom_levels(&g), bottom_levels(&s));
        for t in g.tasks() {
            prop_assert_eq!(bl_s[t.0], bl_g[t.0] * k);
        }
    }

    /// Series composition: widths max out (the full bipartite bridge makes
    /// every cross pair comparable), critical paths chain through the
    /// bridge, totals add (plus the bridge edges).
    #[test]
    fn series_algebra(a in arb_graph(), b in arb_graph(), comm in 0u64..20) {
        let s = compose::series(&a, &b, comm).unwrap();
        prop_assert_eq!(s.num_tasks(), a.num_tasks() + b.num_tasks());
        let bridge = a.exit_tasks().count() * b.entry_tasks().count();
        prop_assert_eq!(s.num_edges(), a.num_edges() + b.num_edges() + bridge);
        prop_assert_eq!(
            max_antichain(&s),
            max_antichain(&a).max(max_antichain(&b))
        );
        prop_assert_eq!(
            critical_path(&s),
            critical_path(&a) + comm + critical_path(&b)
        );
        prop_assert_eq!(s.total_comp(), a.total_comp() + b.total_comp());
        prop_assert_eq!(
            s.total_comm(),
            a.total_comm() + b.total_comm() + bridge as u64 * comm
        );
    }

    /// Parallel composition: widths add, critical paths max out, totals add.
    #[test]
    fn parallel_algebra(a in arb_graph(), b in arb_graph()) {
        let p = compose::parallel(&a, &b).unwrap();
        prop_assert_eq!(p.num_tasks(), a.num_tasks() + b.num_tasks());
        prop_assert_eq!(p.num_edges(), a.num_edges() + b.num_edges());
        prop_assert_eq!(max_antichain(&p), max_antichain(&a) + max_antichain(&b));
        prop_assert_eq!(
            critical_path(&p),
            critical_path(&a).max(critical_path(&b))
        );
        prop_assert_eq!(p.total_comp(), a.total_comp() + b.total_comp());
        prop_assert_eq!(p.total_comm(), a.total_comm() + b.total_comm());
    }

    /// Replication: width multiplies by the copy count; the critical path
    /// threads fork → one copy → join.
    #[test]
    fn replicate_algebra(
        body in arb_graph(),
        copies in 1usize..5,
        fork in 1u64..6,
        join in 1u64..6,
        comm in 0u64..10,
    ) {
        let r = compose::replicate(&body, copies, fork, join, comm).unwrap();
        prop_assert_eq!(r.num_tasks(), copies * body.num_tasks() + 2);
        prop_assert_eq!(max_antichain(&r), copies * max_antichain(&body));
        prop_assert_eq!(
            critical_path(&r),
            fork + comm + critical_path(&body) + comm + join
        );
        prop_assert_eq!(
            r.total_comp(),
            copies as u64 * body.total_comp() + fork + join
        );
        prop_assert_eq!(r.entry_tasks().count(), 1);
        prop_assert_eq!(r.exit_tasks().count(), 1);
    }
}
