//! Per-file analysis context: line table, pragmas, regions, function
//! spans and test-code detection, shared by every rule.

use crate::lexer::{lex, TokKind, Token};
use crate::pragma::{parse_pragmas, Pragmas};

/// A function found by the token scanner.
#[derive(Clone, Debug)]
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// Byte offset of the `fn` keyword.
    pub start: usize,
    /// Byte range of the body (inside the braces, inclusive of them);
    /// `start..start` for bodyless trait signatures.
    pub body: std::ops::Range<usize>,
    /// Token index range of the body in [`FileCtx::tokens`].
    pub body_tokens: std::ops::Range<usize>,
    /// Whether the function (or an enclosing module) is test-only code.
    pub is_test: bool,
}

/// Everything the rules need to know about one source file.
pub struct FileCtx {
    /// Workspace-relative path, `/`-separated.
    pub rel_path: String,
    /// The file's text.
    pub text: String,
    /// All tokens, comments included.
    pub tokens: Vec<Token>,
    /// Byte offset of the start of each line (line 0 starts at 0).
    line_starts: Vec<usize>,
    /// Waiver pragmas and named regions.
    pub pragmas: Pragmas,
    /// Every function in the file, in source order.
    pub fns: Vec<FnSpan>,
    /// Byte ranges of test-only code (`#[cfg(test)] mod`s, `#[test]`
    /// functions); whole-file for `tests/` integration files.
    pub test_spans: Vec<std::ops::Range<usize>>,
}

impl FileCtx {
    /// Lexes and indexes one file.
    #[must_use]
    pub fn new(rel_path: String, text: String) -> Self {
        let tokens = lex(&text);
        let line_starts = line_starts(&text);
        let pragmas = parse_pragmas(&text, &tokens, &line_starts);
        let mut test_spans = find_test_spans(&text, &tokens);
        if rel_path.contains("/tests/") || rel_path.starts_with("tests/") {
            test_spans = std::iter::once(0..text.len()).collect();
        }
        let fns = find_functions(&text, &tokens, &test_spans);
        FileCtx {
            rel_path,
            text,
            tokens,
            line_starts,
            pragmas,
            fns,
            test_spans,
        }
    }

    /// 1-based line number of a byte offset.
    #[must_use]
    pub fn line_of(&self, offset: usize) -> u32 {
        match self.line_starts.binary_search(&offset) {
            Ok(i) => i as u32 + 1,
            Err(i) => i as u32,
        }
    }

    /// 1-based column of a byte offset.
    #[must_use]
    pub fn col_of(&self, offset: usize) -> u32 {
        let line = self.line_of(offset) as usize - 1;
        (offset - self.line_starts[line]) as u32 + 1
    }

    /// The trimmed text of the line containing `offset`.
    #[must_use]
    pub fn line_text(&self, offset: usize) -> &str {
        let line = self.line_of(offset) as usize - 1;
        let start = self.line_starts[line];
        let end = self
            .line_starts
            .get(line + 1)
            .copied()
            .unwrap_or(self.text.len());
        self.text.get(start..end).unwrap_or("").trim_end()
    }

    /// Whether a byte offset lies inside test-only code.
    #[must_use]
    pub fn in_test(&self, offset: usize) -> bool {
        self.test_spans.iter().any(|s| s.contains(&offset))
    }

    /// Whether a byte offset lies inside a named region.
    #[must_use]
    pub fn in_region(&self, name: &str, offset: usize) -> bool {
        let line = self.line_of(offset);
        self.pragmas
            .regions
            .iter()
            .any(|r| r.name == name && line > r.open_line && line < r.close_line)
    }

    /// Indices of non-comment tokens.
    pub fn code_tokens(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.tokens.len()).filter(move |&i| {
            !matches!(
                self.tokens[i].kind,
                TokKind::LineComment | TokKind::BlockComment
            )
        })
    }

    /// The previous / next non-comment token index, if any.
    #[must_use]
    pub fn prev_code(&self, mut i: usize) -> Option<usize> {
        while i > 0 {
            i -= 1;
            if !matches!(
                self.tokens[i].kind,
                TokKind::LineComment | TokKind::BlockComment
            ) {
                return Some(i);
            }
        }
        None
    }

    /// See [`prev_code`](Self::prev_code).
    #[must_use]
    pub fn next_code(&self, mut i: usize) -> Option<usize> {
        loop {
            i += 1;
            match self.tokens.get(i) {
                None => return None,
                Some(t) if matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) => {}
                Some(_) => return Some(i),
            }
        }
    }

    /// Whether token `i` is an identifier with this exact text.
    #[must_use]
    pub fn is_ident(&self, i: usize, text: &str) -> bool {
        self.tokens
            .get(i)
            .is_some_and(|t| t.kind == TokKind::Ident && t.text(&self.text) == text)
    }

    /// Whether token `i` is this punctuation byte.
    #[must_use]
    pub fn is_punct(&self, i: usize, p: u8) -> bool {
        self.tokens
            .get(i)
            .is_some_and(|t| t.kind == TokKind::Punct(p))
    }
}

fn line_starts(text: &str) -> Vec<usize> {
    let mut v = vec![0];
    for (i, b) in text.bytes().enumerate() {
        if b == b'\n' {
            v.push(i + 1);
        }
    }
    v
}

/// Collects the contiguous attribute/modifier text immediately before
/// token `idx` (attributes, doc comments and item keywords), used to
/// spot `#[test]` / `#[cfg(test)]`.
fn attrs_before(text: &str, tokens: &[Token], idx: usize) -> String {
    const MODIFIERS: [&str; 8] = [
        "pub", "const", "unsafe", "extern", "async", "crate", "in", "default",
    ];
    let mut out = String::new();
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let t = tokens[i];
        match t.kind {
            TokKind::LineComment | TokKind::BlockComment => continue,
            TokKind::Ident if MODIFIERS.contains(&t.text(text)) => continue,
            TokKind::Str => continue, // extern "C"
            // A closing paren/bracket: could be `pub(crate)` or the end
            // of an attribute `#[…]`; swallow the balanced group.
            TokKind::Punct(b')') | TokKind::Punct(b']') => {
                let open = match t.kind {
                    TokKind::Punct(b')') => b'(',
                    _ => b'[',
                };
                let close = match t.kind {
                    TokKind::Punct(b')') => b')',
                    _ => b']',
                };
                let mut depth = 1usize;
                let group_end = t.end;
                while i > 0 && depth > 0 {
                    i -= 1;
                    match tokens[i].kind {
                        TokKind::Punct(p) if p == close => depth += 1,
                        TokKind::Punct(p) if p == open => depth -= 1,
                        _ => {}
                    }
                }
                // `#[…]`: include the hash; `pub(…)`: just a modifier.
                if close == b']' && i > 0 && tokens[i - 1].kind == TokKind::Punct(b'#') {
                    i -= 1;
                    out.push(' ');
                    out.push_str(text.get(tokens[i].start..group_end).unwrap_or(""));
                }
            }
            _ => break,
        }
    }
    out
}

/// Finds `#[cfg(test)] mod … { … }` bodies.
fn find_test_spans(text: &str, tokens: &[Token]) -> Vec<std::ops::Range<usize>> {
    let mut spans = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text(text) != "mod" {
            continue;
        }
        let attrs = attrs_before(text, tokens, i);
        if !(attrs.contains("cfg") && attrs.contains("test")) {
            continue;
        }
        // Find the module body `{ … }` (a `mod x;` declaration has none).
        let mut j = i + 1;
        let mut depth = 0usize;
        let mut open = None;
        while j < tokens.len() {
            match tokens[j].kind {
                TokKind::Punct(b';') if depth == 0 => break,
                TokKind::Punct(b'{') => {
                    if depth == 0 {
                        open = Some(tokens[j].start);
                    }
                    depth += 1;
                }
                TokKind::Punct(b'}') => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        if let Some(s) = open {
                            spans.push(s..tokens[j].end);
                        }
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
    spans
}

/// Finds every `fn` item and its body span.
fn find_functions(
    text: &str,
    tokens: &[Token],
    test_spans: &[std::ops::Range<usize>],
) -> Vec<FnSpan> {
    let mut fns = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let t = tokens[i];
        if t.kind != TokKind::Ident || t.text(text) != "fn" {
            i += 1;
            continue;
        }
        // The name is the next identifier (skipping comments).
        let mut j = i + 1;
        while j < tokens.len()
            && matches!(tokens[j].kind, TokKind::LineComment | TokKind::BlockComment)
        {
            j += 1;
        }
        let Some(name_tok) = tokens.get(j).filter(|t| t.kind == TokKind::Ident) else {
            i += 1;
            continue; // `fn` in a type position (`Fn()` lexes differently anyway)
        };
        let name = name_tok.text(text).to_owned();
        // Scan to the body `{` at paren/bracket depth 0, or a `;`
        // (bodyless trait method / extern decl).
        let mut depth = 0usize;
        let mut k = j + 1;
        let mut body = None;
        while k < tokens.len() {
            match tokens[k].kind {
                TokKind::Punct(b'(') | TokKind::Punct(b'[') => depth += 1,
                TokKind::Punct(b')') | TokKind::Punct(b']') => depth = depth.saturating_sub(1),
                TokKind::Punct(b';') if depth == 0 => break,
                TokKind::Punct(b'{') if depth == 0 => {
                    // Found the body; match braces to its close.
                    let open_tok = k;
                    let mut braces = 1usize;
                    let mut m = k + 1;
                    while m < tokens.len() && braces > 0 {
                        match tokens[m].kind {
                            TokKind::Punct(b'{') => braces += 1,
                            TokKind::Punct(b'}') => braces -= 1,
                            _ => {}
                        }
                        m += 1;
                    }
                    body = Some((tokens[open_tok].start..tokens[m - 1].end, open_tok..m));
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        let is_test_attr = attrs_before(text, tokens, i).contains("test");
        let (body, body_tokens) = body.unwrap_or((t.start..t.start, i..i));
        let is_test = is_test_attr || test_spans.iter().any(|s| s.contains(&t.start));
        let next_scan = body_tokens.start.max(i) + 1;
        fns.push(FnSpan {
            name,
            start: t.start,
            body,
            body_tokens,
            is_test,
        });
        // Continue *inside* the body too: nested fns are items as well.
        i = next_scan;
    }
    fns
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_and_columns() {
        let ctx = FileCtx::new("a.rs".into(), "ab\ncd\n".into());
        assert_eq!(ctx.line_of(0), 1);
        assert_eq!(ctx.line_of(3), 2);
        assert_eq!(ctx.col_of(4), 2);
        assert_eq!(ctx.line_text(4), "cd");
    }

    #[test]
    fn functions_and_test_mods_are_found() {
        let src = r#"
pub fn alpha(x: usize) -> usize { x + 1 }

#[cfg(test)]
mod tests {
    #[test]
    fn beta() { assert!(true); }
}
"#;
        let ctx = FileCtx::new("crates/x/src/lib.rs".into(), src.into());
        let names: Vec<_> = ctx.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["alpha", "beta"]);
        assert!(!ctx.fns[0].is_test);
        assert!(ctx.fns[1].is_test);
        assert!(ctx.in_test(ctx.fns[1].start));
        assert!(!ctx.in_test(ctx.fns[0].start));
    }

    #[test]
    fn integration_test_files_are_all_test_code() {
        let ctx = FileCtx::new("crates/x/tests/e2e.rs".into(), "fn f() {}".into());
        assert!(ctx.fns[0].is_test);
    }

    #[test]
    fn generic_fns_find_their_body() {
        let src = "fn g<T: Into<String>>(t: T) -> Vec<u8> where T: Clone { Vec::new() }";
        let ctx = FileCtx::new("x.rs".into(), src.into());
        assert_eq!(ctx.fns.len(), 1);
        assert!(ctx.text[ctx.fns[0].body.clone()].contains("Vec::new"));
    }

    #[test]
    fn bodyless_trait_methods_are_recorded() {
        let src = "trait T { fn a(&self); fn b(&self) { } }";
        let ctx = FileCtx::new("x.rs".into(), src.into());
        let names: Vec<_> = ctx.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
        assert!(ctx.fns[0].body.is_empty());
        assert!(!ctx.fns[1].body.is_empty());
    }
}
