//! A hand-rolled Rust lexer over raw bytes.
//!
//! The workspace is built offline with no access to `syn` or `rustc`
//! internals, so the analysis engine carries its own tokenizer. It is a
//! *lossless* lexer: every non-whitespace byte of the input belongs to
//! exactly one token, tokens never overlap, and they are emitted in
//! source order — properties the lexer property suite pins down on
//! arbitrary byte soup. It never panics and never rejects input; stray
//! bytes become one-byte [`TokKind::Punct`] tokens.
//!
//! The subtle parts of Rust's lexical grammar that the rules depend on
//! are handled faithfully:
//!
//! * strings with escapes (`"a\"b"`), byte strings (`b"..."`),
//! * raw strings with arbitrary hash fences (`r##"…"##`, `br#"…"#`),
//! * char and byte literals vs lifetimes (`'a'` vs `'a`, `'\''`, `b'x'`),
//! * nested block comments (`/* /* */ */`) and doc comments,
//! * numbers with underscores, radix prefixes, exponents and suffixes,
//!   without eating the dots of `1..n` ranges or `1.max(2)` method calls.
//!
//! Comments are *kept* in the stream (the pragma layer reads them); rules
//! that only care about code iterate via [`code_tokens`].

/// The classes of token the analyzer distinguishes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (the lexer does not separate keywords).
    Ident,
    /// A lifetime or loop label, e.g. `'a` (without a closing quote).
    Lifetime,
    /// An integer or float literal, including any suffix.
    Num,
    /// A string literal of any flavour: `"…"`, `r#"…"#`, `b"…"`, `br"…"`.
    Str,
    /// A char or byte literal: `'x'`, `b'\n'`.
    Char,
    /// A `//` comment (incl. `///` and `//!` doc comments), sans newline.
    LineComment,
    /// A `/* … */` comment, with nesting.
    BlockComment,
    /// One punctuation byte (the lexer does not glue multi-byte
    /// operators; `::` is two `Punct(b':')` tokens).
    Punct(u8),
}

/// One token: a kind plus its byte span in the source.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

impl Token {
    /// The token's text. Byte-based slicing is safe here: token
    /// boundaries always fall on character boundaries because multi-byte
    /// UTF-8 units are only ever consumed whole (inside idents, strings
    /// and comments).
    #[must_use]
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        src.get(self.start..self.end).unwrap_or("")
    }
}

/// Whether a byte can start an identifier. Any non-ASCII byte counts, so
/// multi-byte UTF-8 identifiers (and stray high bytes) lex as one token
/// instead of splitting mid-character.
fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    is_ident_start(b) || b.is_ascii_digit()
}

/// Lexes `src` into tokens (whitespace is skipped, comments are kept).
#[must_use]
pub fn lex(src: &str) -> Vec<Token> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < b.len() {
        let start = i;
        let c = b[i];
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let kind = if c == b'/' && b.get(i + 1) == Some(&b'/') {
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
            TokKind::LineComment
        } else if c == b'/' && b.get(i + 1) == Some(&b'*') {
            i += 2;
            let mut depth = 1usize;
            while i < b.len() && depth > 0 {
                if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            TokKind::BlockComment
        } else if let Some(next) = raw_string_end(b, i) {
            // r"…", r#"…"#, b r#"…"# — raw strings with any hash fence.
            i = next;
            TokKind::Str
        } else if (c == b'b' && b.get(i + 1) == Some(&b'"')) || c == b'"' {
            i += if c == b'b' { 2 } else { 1 };
            i = skip_quoted(b, i, b'"');
            TokKind::Str
        } else if c == b'b' && b.get(i + 1) == Some(&b'\'') {
            i += 2;
            i = skip_quoted(b, i, b'\'');
            TokKind::Char
        } else if c == b'\'' {
            // Lifetime or char literal. `'` + ident-start + `'` is a char
            // (`'a'`); `'` + ident chars without a closing quote is a
            // lifetime (`'static`); `'\…'` is always a char.
            if b.get(i + 1) == Some(&b'\\') {
                // Land on the backslash so skip_quoted consumes the
                // escape pair whole (`'\''` must not close early).
                i += 1;
                i = skip_quoted(b, i, b'\'');
                TokKind::Char
            } else if b.get(i + 1).copied().is_some_and(is_ident_start) {
                let mut j = i + 1;
                while j < b.len() && is_ident_continue(b[j]) {
                    j += 1;
                }
                if b.get(j) == Some(&b'\'') && j == i + utf8_char_len(b, i + 1) + 1 {
                    // Exactly one character between the quotes: `'a'`,
                    // `'é'`. (`'ab'` is not valid Rust; lex the likelier
                    // lifetime.)
                    i = j + 1;
                    TokKind::Char
                } else {
                    i = j;
                    TokKind::Lifetime
                }
            } else if b.get(i + 2) == Some(&b'\'') && b.get(i + 1).is_some() {
                // A single non-ident char: `'+'`, `' '`.
                i += 3;
                TokKind::Char
            } else {
                i += 1;
                TokKind::Punct(b'\'')
            }
        } else if is_ident_start(c) {
            while i < b.len() && is_ident_continue(b[i]) {
                i += 1;
            }
            TokKind::Ident
        } else if c.is_ascii_digit() {
            i = lex_number(b, i);
            TokKind::Num
        } else {
            i += 1;
            TokKind::Punct(c)
        };
        toks.push(Token {
            kind,
            start,
            end: i.max(start + 1),
        });
    }
    toks
}

/// Length in bytes of the UTF-8 character starting at `i` (1 for ASCII
/// and for bytes that are not a valid start).
fn utf8_char_len(b: &[u8], i: usize) -> usize {
    match b.get(i) {
        Some(&c) if c >= 0xF0 => 4,
        Some(&c) if c >= 0xE0 => 3,
        Some(&c) if c >= 0xC0 => 2,
        _ => 1,
    }
}

/// If a raw string starts at `i` (`r`/`b` prefixes plus `#` fence),
/// returns the offset one past its end; `None` if this is not one.
fn raw_string_end(b: &[u8], i: usize) -> Option<usize> {
    let mut j = i;
    let mut saw_r = false;
    for _ in 0..2 {
        match b.get(j) {
            Some(&b'r') if !saw_r => {
                saw_r = true;
                j += 1;
            }
            Some(&b'b') if j == i => j += 1,
            _ => break,
        }
    }
    if !saw_r {
        return None;
    }
    let mut hashes = 0usize;
    while b.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if b.get(j) != Some(&b'"') {
        return None;
    }
    j += 1;
    // Scan for `"` followed by `hashes` hash marks; unterminated raw
    // strings run to end of input.
    while j < b.len() {
        if b[j] == b'"'
            && b[j + 1..]
                .iter()
                .take(hashes)
                .filter(|&&h| h == b'#')
                .count()
                == hashes
        {
            return Some(j + 1 + hashes);
        }
        j += 1;
    }
    Some(b.len())
}

/// Advances past a quoted literal body (after the opening quote),
/// honouring `\` escapes; unterminated literals run to end of input.
fn skip_quoted(b: &[u8], mut i: usize, quote: u8) -> usize {
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            c if c == quote => return i + 1,
            _ => i += 1,
        }
    }
    b.len()
}

/// Advances past a numeric literal starting at a digit: radix prefixes,
/// `_` separators, one fractional dot (never a `..` range or a method
/// dot), exponents, and alphanumeric suffixes.
fn lex_number(b: &[u8], mut i: usize) -> usize {
    let radix_prefix = b[i] == b'0'
        && matches!(
            b.get(i + 1),
            Some(&b'x') | Some(&b'X') | Some(&b'o') | Some(&b'O') | Some(&b'b') | Some(&b'B')
        );
    if radix_prefix {
        i += 2;
    }
    let digits = |c: u8| c.is_ascii_alphanumeric() || c == b'_';
    while i < b.len() && digits(b[i]) {
        // `1e+5` / `1E-5`: the sign belongs to the literal only right
        // after an exponent marker (and not in radix literals, where
        // `e` is a hex digit).
        if (b[i] == b'e' || b[i] == b'E')
            && !radix_prefix
            && matches!(b.get(i + 1), Some(&b'+') | Some(&b'-'))
            && b.get(i + 2).is_some_and(u8::is_ascii_digit)
        {
            i += 2;
        }
        i += 1;
    }
    // One fractional dot: `1.5` and trailing `1.`, but not `1..3` and
    // not `1.max()`.
    if !radix_prefix
        && b.get(i) == Some(&b'.')
        && b.get(i + 1) != Some(&b'.')
        && !b.get(i + 1).copied().is_some_and(is_ident_start)
    {
        i += 1;
        while i < b.len() && digits(b[i]) {
            if (b[i] == b'e' || b[i] == b'E')
                && matches!(b.get(i + 1), Some(&b'+') | Some(&b'-'))
                && b.get(i + 2).is_some_and(u8::is_ascii_digit)
            {
                i += 2;
            }
            i += 1;
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, &str)> {
        lex(src)
            .iter()
            .map(|t| (t.kind, t.text(src)))
            .collect::<Vec<_>>()
    }

    #[test]
    fn idents_keywords_and_puncts() {
        let ks = kinds("fn f(x: u32) -> u32 { x + 1 }");
        assert_eq!(ks[0], (TokKind::Ident, "fn"));
        assert_eq!(ks[1], (TokKind::Ident, "f"));
        assert!(ks.contains(&(TokKind::Punct(b'{'), "{")));
        assert!(ks.contains(&(TokKind::Num, "1")));
    }

    #[test]
    fn strings_and_escapes() {
        assert_eq!(kinds(r#" "a\"b" x "#)[0].0, TokKind::Str);
        assert_eq!(kinds(r#" b"bytes\x00" "#)[0].0, TokKind::Str);
        let ks = kinds(r#" "a\"b" x "#);
        assert_eq!(ks[1], (TokKind::Ident, "x"));
    }

    #[test]
    fn raw_strings_with_fences() {
        let src = r####"r##"has "# inside"## tail"####;
        let ks = kinds(src);
        assert_eq!(ks[0].0, TokKind::Str);
        assert_eq!(ks[1], (TokKind::Ident, "tail"));
        assert_eq!(kinds(r###"br#"x"# y"###)[1], (TokKind::Ident, "y"));
        // Unterminated raw string consumes the rest without panicking.
        assert_eq!(kinds("r#\"open").len(), 1);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        assert_eq!(
            kinds(
                "'a
"
            )[0]
            .0,
            TokKind::Lifetime
        );
        assert_eq!(kinds("'a'")[0].0, TokKind::Char);
        assert_eq!(kinds("'static>")[0].0, TokKind::Lifetime);
        assert_eq!(kinds(r"'\''")[0].0, TokKind::Char);
        assert_eq!(kinds("'é'")[0].0, TokKind::Char);
        assert_eq!(kinds("b'x'")[0].0, TokKind::Char);
        assert_eq!(kinds("'+'")[0].0, TokKind::Char);
        // A lone quote degrades to punctuation.
        assert_eq!(kinds("' ")[0].0, TokKind::Punct(b'\''));
    }

    #[test]
    fn nested_block_comments() {
        let ks = kinds("/* outer /* inner */ still */ after");
        assert_eq!(ks[0].0, TokKind::BlockComment);
        assert_eq!(ks[1], (TokKind::Ident, "after"));
        // Unterminated nesting runs to EOF.
        assert_eq!(kinds("/* /* */").len(), 1);
    }

    #[test]
    fn numbers_dots_and_ranges() {
        assert_eq!(kinds("1..5").len(), 4); // 1 . . 5
        assert_eq!(kinds("1.5e-3")[0], (TokKind::Num, "1.5e-3"));
        assert_eq!(kinds("1.max(2)")[0], (TokKind::Num, "1"));
        assert_eq!(kinds("0xFF_u32")[0], (TokKind::Num, "0xFF_u32"));
        assert_eq!(kinds("1_000.")[0], (TokKind::Num, "1_000."));
        assert_eq!(kinds("0b1010")[0], (TokKind::Num, "0b1010"));
    }

    #[test]
    fn spans_cover_all_non_whitespace_bytes() {
        let src = "let s = \"x\"; // c\n/* b */ 'a' 1.0";
        let toks = lex(src);
        let mut covered = vec![false; src.len()];
        let mut prev_end = 0;
        for t in &toks {
            assert!(t.start >= prev_end, "tokens must not overlap");
            assert!(t.end > t.start);
            prev_end = t.end;
            for c in covered.iter_mut().take(t.end).skip(t.start) {
                *c = true;
            }
        }
        // Every non-whitespace byte is inside a token; uncovered bytes
        // are whitespace between tokens. (Whitespace *inside* strings
        // and comments is covered, so the converse does not hold.)
        for (i, &byte) in src.as_bytes().iter().enumerate() {
            assert!(
                covered[i] || byte.is_ascii_whitespace(),
                "non-whitespace byte {i} not covered"
            );
        }
    }
}
