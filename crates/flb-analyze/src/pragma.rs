//! `flb-analyze:` pragma comments: waivers and named regions.
//!
//! Grammar (one pragma per line comment):
//!
//! ```text
//! // flb-analyze: allow(rule-id, reason="why this is safe")
//! // flb-analyze: region(name)
//! // flb-analyze: region-end(name)
//! ```
//!
//! An `allow` waives findings of `rule-id` on the same line (trailing
//! comment) or on the next code line (standalone comment line).
//! Regions open/close named spans; `no-alloc-in-hot-loop` only looks
//! inside `region(no-alloc)` fences.

use crate::lexer::{TokKind, Token};

/// One parsed `allow(...)` waiver.
#[derive(Clone, Debug)]
pub struct Allow {
    /// Rule being waived.
    pub rule: String,
    /// Mandatory justification.
    pub reason: String,
    /// 1-based line the pragma comment sits on.
    pub line: u32,
    /// 1-based line the waiver applies to (same line for trailing
    /// comments, next line for standalone ones).
    pub applies_line: u32,
}

/// One matched `region(name)` … `region-end(name)` pair.
#[derive(Clone, Debug)]
pub struct Region {
    pub name: String,
    /// 1-based line of the opening pragma.
    pub open_line: u32,
    /// 1-based line of the closing pragma.
    pub close_line: u32,
}

/// A malformed pragma (reported as a finding by the engine so typos
/// cannot silently disable a waiver).
#[derive(Clone, Debug)]
pub struct BadPragma {
    pub line: u32,
    pub message: String,
}

/// All pragmas found in one file.
#[derive(Default)]
pub struct Pragmas {
    pub allows: Vec<Allow>,
    pub regions: Vec<Region>,
    pub bad: Vec<BadPragma>,
}

/// Extracts pragmas from a file's line comments.
#[must_use]
pub fn parse_pragmas(text: &str, tokens: &[Token], line_starts: &[usize]) -> Pragmas {
    let mut out = Pragmas::default();
    // name -> stack of open lines, to pair region/region-end.
    let mut open: Vec<(String, u32)> = Vec::new();

    for tok in tokens {
        if tok.kind != TokKind::LineComment {
            continue;
        }
        let body = tok.text(text).trim_start_matches('/').trim();
        let Some(rest) = body.strip_prefix("flb-analyze:") else {
            continue;
        };
        let rest = rest.trim();
        let line = line_of(line_starts, tok.start);
        let trailing = !is_line_start(text, line_starts, tok.start);

        if let Some(args) = directive(rest, "allow") {
            match parse_allow(args) {
                Ok((rule, reason)) => out.allows.push(Allow {
                    rule,
                    reason,
                    line,
                    applies_line: if trailing { line } else { line + 1 },
                }),
                Err(message) => out.bad.push(BadPragma { line, message }),
            }
        } else if let Some(args) = directive(rest, "region-end") {
            let name = args.trim().to_owned();
            match open.iter().rposition(|(n, _)| *n == name) {
                Some(i) => {
                    let (name, open_line) = open.remove(i);
                    out.regions.push(Region {
                        name,
                        open_line,
                        close_line: line,
                    });
                }
                None => out.bad.push(BadPragma {
                    line,
                    message: format!("region-end({name}) without a matching region({name})"),
                }),
            }
        } else if let Some(args) = directive(rest, "region") {
            let name = args.trim().to_owned();
            if name.is_empty() {
                out.bad.push(BadPragma {
                    line,
                    message: "region() needs a name".into(),
                });
            } else {
                open.push((name, line));
            }
        } else {
            out.bad.push(BadPragma {
                line,
                message: format!(
                    "unknown flb-analyze pragma `{rest}` (expected allow/region/region-end)"
                ),
            });
        }
    }

    for (name, open_line) in open {
        out.bad.push(BadPragma {
            line: open_line,
            message: format!("region({name}) is never closed by region-end({name})"),
        });
    }
    out
}

/// `directive("allow(x, y)", "allow")` → `Some("x, y")`.
fn directive<'a>(rest: &'a str, name: &str) -> Option<&'a str> {
    let after = rest.strip_prefix(name)?;
    let after = after.trim_start();
    let inner = after.strip_prefix('(')?;
    // The argument list runs to the *last* closing paren so reasons may
    // contain parentheses.
    let close = inner.rfind(')')?;
    if !inner[close + 1..].trim().is_empty() {
        return None;
    }
    Some(&inner[..close])
}

/// Parses `rule-id, reason="..."`; the reason is mandatory.
fn parse_allow(args: &str) -> Result<(String, String), String> {
    let (rule, rest) = match args.split_once(',') {
        Some((r, rest)) => (r.trim(), rest.trim()),
        None => (args.trim(), ""),
    };
    if rule.is_empty() {
        return Err("allow() needs a rule id".into());
    }
    let Some(reason) = rest.strip_prefix("reason=") else {
        return Err(format!(
            "allow({rule}) is missing the mandatory reason=\"...\" argument"
        ));
    };
    let reason = reason.trim();
    let reason = reason
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .ok_or_else(|| format!("allow({rule}): reason must be a double-quoted string"))?;
    if reason.trim().is_empty() {
        return Err(format!("allow({rule}): reason must not be empty"));
    }
    Ok((rule.to_owned(), reason.to_owned()))
}

fn line_of(line_starts: &[usize], offset: usize) -> u32 {
    match line_starts.binary_search(&offset) {
        Ok(i) => i as u32 + 1,
        Err(i) => i as u32,
    }
}

/// Whether the comment is the first non-whitespace thing on its line.
fn is_line_start(text: &str, line_starts: &[usize], offset: usize) -> bool {
    let line = line_of(line_starts, offset) as usize - 1;
    text[line_starts[line]..offset]
        .bytes()
        .all(|b| b == b' ' || b == b'\t')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn pragmas(src: &str) -> Pragmas {
        let tokens = lex(src);
        let mut starts = vec![0];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                starts.push(i + 1);
            }
        }
        parse_pragmas(src, &tokens, &starts)
    }

    #[test]
    fn trailing_and_standalone_allows() {
        let p = pragmas(
            "let x = v[0]; // flb-analyze: allow(no-panic-in-request-path, reason=\"len checked\")\n\
             // flb-analyze: allow(lock-order, reason=\"single lock\")\n\
             let g = m.lock();\n",
        );
        assert_eq!(p.allows.len(), 2);
        assert!(p.bad.is_empty());
        assert_eq!(p.allows[0].applies_line, 1);
        assert_eq!(p.allows[1].line, 2);
        assert_eq!(p.allows[1].applies_line, 3);
        assert_eq!(p.allows[1].reason, "single lock");
    }

    #[test]
    fn regions_pair_up() {
        let p = pragmas(
            "// flb-analyze: region(no-alloc)\nfn f() {}\n// flb-analyze: region-end(no-alloc)\n",
        );
        assert_eq!(p.regions.len(), 1);
        assert_eq!(p.regions[0].open_line, 1);
        assert_eq!(p.regions[0].close_line, 3);
        assert!(p.bad.is_empty());
    }

    #[test]
    fn malformed_pragmas_are_reported() {
        let p = pragmas(
            "// flb-analyze: allow(no-panic-in-request-path)\n\
             // flb-analyze: region(x)\n\
             // flb-analyze: frobnicate(y)\n",
        );
        assert_eq!(p.allows.len(), 0);
        assert_eq!(p.bad.len(), 3); // missing reason, unclosed region, unknown directive
    }

    #[test]
    fn reason_may_contain_parens_and_commas() {
        let p = pragmas(
            "// flb-analyze: allow(bounded-decode-alloc, reason=\"clamped by min(a, b) above\")\nx;\n",
        );
        assert_eq!(p.allows.len(), 1);
        assert_eq!(p.allows[0].reason, "clamped by min(a, b) above");
    }
}
