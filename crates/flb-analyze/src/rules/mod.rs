//! The rule registry.
//!
//! A rule is a function from a [`FileCtx`] to findings. Adding a rule:
//! write a module exposing `ID` and `run(&FileCtx, &mut Vec<Finding>)`,
//! list it in [`run_file_rules`] (or in the crate-level pass in
//! `lib.rs` if it needs cross-file state, like `lock_order`), and add a
//! firing + waived golden pair under `tests/golden/`.

pub mod alloc;
pub mod decode_alloc;
pub mod lock_order;
pub mod panics;
pub mod wallclock;

use crate::context::FileCtx;
use crate::report::Finding;

/// All per-file rule ids, in the order they run.
pub const FILE_RULE_IDS: [&str; 4] = [alloc::ID, panics::ID, wallclock::ID, decode_alloc::ID];

/// Builds a finding anchored at a byte offset of `ctx`.
pub(crate) fn finding(ctx: &FileCtx, rule: &str, offset: usize, message: String) -> Finding {
    Finding {
        rule: rule.to_owned(),
        file: ctx.rel_path.clone(),
        line: ctx.line_of(offset),
        col: ctx.col_of(offset),
        message,
        snippet: ctx.line_text(offset).trim().to_owned(),
        waived: None,
    }
}

/// Runs every per-file rule over one file.
pub fn run_file_rules(ctx: &FileCtx, out: &mut Vec<Finding>) {
    alloc::run(ctx, out);
    panics::run(ctx, out);
    wallclock::run(ctx, out);
    decode_alloc::run(ctx, out);
}
