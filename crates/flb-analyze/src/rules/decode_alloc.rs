//! `bounded-decode-alloc`: allocations sized by unclamped input.
//!
//! `Vec::with_capacity(n)` / `vec![x; n]` where `n` comes straight out
//! of a decoded header lets a 16-byte frame request a multi-gigabyte
//! allocation. The rule demands that the size expression show evidence
//! of a bound: a literal, a `.min(...)` clamp, a `len`-style source, a
//! prior range comparison, or a caller-supplied parameter.

use crate::context::FileCtx;
use crate::lexer::TokKind;
use crate::report::Finding;

pub const ID: &str = "bounded-decode-alloc";

/// Identifier fragments that mark a size expression as bounded: either
/// an explicit clamp or a length derived from data already in memory
/// (`len()`, `num_tasks()`-style counts of existing structures).
const BOUNDED_MARKERS: [&str; 6] = ["min", "len", "capacity", "remaining", "MAX", "num_"];

/// Type-ish / keyword identifiers that carry no size information.
const NEUTRAL_IDENTS: [&str; 12] = [
    "as",
    "usize",
    "u8",
    "u16",
    "u32",
    "u64",
    "i32",
    "i64",
    "self",
    "std",
    "cmp",
    "saturating_add",
];

pub fn run(ctx: &FileCtx, out: &mut Vec<Finding>) {
    for i in ctx.code_tokens() {
        let tok = ctx.tokens[i];
        if tok.kind != TokKind::Ident || ctx.in_test(tok.start) {
            continue;
        }
        let text = tok.text(&ctx.text);
        let arg = if text == "with_capacity" {
            // `Vec::with_capacity(ARG)` / `self.buf.with_capacity…`
            let Some(open) = ctx.next_code(i).filter(|&n| ctx.is_punct(n, b'(')) else {
                continue;
            };
            balanced_span(ctx, open, b'(', b')')
        } else if text == "vec" && ctx.next_code(i).is_some_and(|n| ctx.is_punct(n, b'!')) {
            // `vec![ELEM; ARG]` — the size is after the `;`.
            let bang = ctx.next_code(i).unwrap_or(i);
            let Some(open) = ctx.next_code(bang).filter(|&n| ctx.is_punct(n, b'[')) else {
                continue;
            };
            let Some(span) = balanced_span(ctx, open, b'[', b']') else {
                continue;
            };
            match split_at_semicolon(ctx, span.clone()) {
                Some(size_span) => Some(size_span),
                None => continue, // `vec![a, b]`: size is the literal element count
            }
        } else {
            continue;
        };
        let Some(arg) = arg else { continue };

        if let Some(culprit) = unbounded_ident(ctx, arg, tok.start) {
            out.push(super::finding(
                ctx,
                ID,
                tok.start,
                format!(
                    "allocation sized by `{culprit}` with no visible bound; clamp it (e.g. `.min(MAX_…)`) before allocating"
                ),
            ));
        }
    }
}

/// Token index range strictly inside the group opened at `open`.
fn balanced_span(ctx: &FileCtx, open: usize, ob: u8, cb: u8) -> Option<std::ops::Range<usize>> {
    let mut depth = 1usize;
    let mut j = open;
    while depth > 0 {
        j = ctx.next_code(j)?;
        if ctx.is_punct(j, ob) {
            depth += 1;
        } else if ctx.is_punct(j, cb) {
            depth -= 1;
        }
    }
    Some(open + 1..j)
}

/// The part of `span` after a depth-0 `;`, if there is one.
fn split_at_semicolon(
    ctx: &FileCtx,
    span: std::ops::Range<usize>,
) -> Option<std::ops::Range<usize>> {
    let mut depth = 0usize;
    for j in span.clone() {
        match ctx.tokens[j].kind {
            TokKind::Punct(b'(') | TokKind::Punct(b'[') | TokKind::Punct(b'{') => depth += 1,
            TokKind::Punct(b')') | TokKind::Punct(b']') | TokKind::Punct(b'}') => {
                depth = depth.saturating_sub(1);
            }
            TokKind::Punct(b';') if depth == 0 => return Some(j + 1..span.end),
            _ => {}
        }
    }
    None
}

/// Returns the first identifier in the size expression with no
/// evidence of a bound, or `None` if the expression looks clamped.
fn unbounded_ident(ctx: &FileCtx, arg: std::ops::Range<usize>, site: usize) -> Option<String> {
    let mut vars: Vec<&str> = Vec::new();
    for j in arg {
        let t = ctx.tokens[j];
        if t.kind != TokKind::Ident {
            continue;
        }
        let text = t.text(&ctx.text);
        if BOUNDED_MARKERS.iter().any(|m| text.contains(m)) {
            return None; // explicit clamp or length source in the expression
        }
        // Method/field names after `.` carry no size of their own
        // (`n.div_ceil(64)`, `spec.procs`): the receiver governs.
        if ctx.prev_code(j).is_some_and(|p| ctx.is_punct(p, b'.')) {
            continue;
        }
        if !NEUTRAL_IDENTS.contains(&text) {
            vars.push(text);
        }
    }
    vars.into_iter()
        .find(|v| !ident_is_bounded(ctx, v, site, 0))
        .map(str::to_owned)
}

/// How many `let` hops boundedness may be traced through
/// (`let v = g.num_tasks(); let words = v.div_ceil(64);`).
const MAX_TRACE_DEPTH: u32 = 2;

/// Evidence that `var` is bounded before `site` inside its function.
fn ident_is_bounded(ctx: &FileCtx, var: &str, site: usize, depth: u32) -> bool {
    // Innermost function containing the site; allocations outside any
    // function (consts) are compile-time and fine.
    let Some(f) = ctx
        .fns
        .iter()
        .filter(|f| f.body.contains(&site))
        .max_by_key(|f| f.start)
    else {
        return true;
    };
    // (a) Caller-supplied parameter: the signature names it.
    let sig = ctx.text.get(f.start..f.body.start).unwrap_or("");
    if has_word(sig, var) {
        return true;
    }
    for i in f.body_tokens.clone() {
        let t = ctx.tokens[i];
        if t.start >= site {
            break;
        }
        if t.kind != TokKind::Ident || t.text(&ctx.text) != var {
            continue;
        }
        // (b) `let var = …;` whose right side is itself bounded.
        if ctx.prev_code(i).is_some_and(|p| ctx.is_ident(p, "let"))
            && let_rhs_is_bounded(ctx, i, f.body_tokens.end, depth)
        {
            return true;
        }
        // (c) A prior range comparison: `var >`/`var <`/`> var`/`< var`.
        let next_cmp = ctx
            .next_code(i)
            .is_some_and(|n| ctx.is_punct(n, b'>') || ctx.is_punct(n, b'<'));
        let prev_cmp = ctx
            .prev_code(i)
            .is_some_and(|p| ctx.is_punct(p, b'>') || ctx.is_punct(p, b'<'));
        if next_cmp || prev_cmp {
            return true;
        }
    }
    false
}

/// Whether the RHS of the `let` starting before ident token `i` shows
/// a bound: a marker identifier, or (up to [`MAX_TRACE_DEPTH`] hops) a
/// variable that is itself bounded.
fn let_rhs_is_bounded(ctx: &FileCtx, i: usize, body_end: usize, trace: u32) -> bool {
    let mut depth = 0usize;
    let mut vars: Vec<(usize, &str)> = Vec::new();
    for j in i + 1..body_end {
        match ctx.tokens[j].kind {
            TokKind::Punct(b'(') | TokKind::Punct(b'[') | TokKind::Punct(b'{') => depth += 1,
            TokKind::Punct(b')') | TokKind::Punct(b']') | TokKind::Punct(b'}') => {
                depth = depth.saturating_sub(1);
            }
            TokKind::Punct(b';') if depth == 0 => break,
            TokKind::Ident => {
                let text = ctx.tokens[j].text(&ctx.text);
                if BOUNDED_MARKERS.iter().any(|m| text.contains(m)) {
                    return true;
                }
                if !NEUTRAL_IDENTS.contains(&text)
                    && !ctx.prev_code(j).is_some_and(|p| ctx.is_punct(p, b'.'))
                {
                    vars.push((ctx.tokens[j].start, text));
                }
            }
            _ => {}
        }
    }
    if vars.is_empty() {
        return true; // literal arithmetic RHS
    }
    trace < MAX_TRACE_DEPTH
        && vars
            .iter()
            .all(|(at, v)| ident_is_bounded(ctx, v, *at, trace + 1))
}

/// Word-boundary substring match on raw text.
fn has_word(hay: &str, word: &str) -> bool {
    let bytes = hay.as_bytes();
    let mut from = 0;
    while let Some(pos) = hay[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let ok_before = start == 0 || !is_word_byte(bytes[start - 1]);
        let ok_after = end == bytes.len() || !is_word_byte(bytes[end]);
        if ok_before && ok_after {
            return true;
        }
        from = start + 1;
    }
    false
}

fn is_word_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_on(src: &str) -> Vec<Finding> {
        let ctx = FileCtx::new("crates/x/src/lib.rs".into(), src.into());
        let mut out = Vec::new();
        run(&ctx, &mut out);
        out
    }

    #[test]
    fn unclamped_decoded_length_is_flagged() {
        let src = "\
fn decode(buf: &[u8]) -> Vec<u8> {
    let n = read_u32(buf) as usize;
    let mut v = Vec::with_capacity(n);
    v
}
";
        let out = run_on(src);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("`n`"));
    }

    #[test]
    fn min_clamp_len_source_and_literals_pass() {
        let src = "\
const MAX_FRAME: usize = 1024;
fn a(buf: &[u8]) -> Vec<u8> { Vec::with_capacity(read(buf).min(MAX_FRAME)) }
fn b(items: &[u8]) -> Vec<u8> { Vec::with_capacity(items.len()) }
fn c() -> Vec<u8> { Vec::with_capacity(64 * 1024) }
fn d(buf: &[u8]) -> Vec<u8> {
    let n = header_len(buf);
    Vec::with_capacity(n)
}
";
        assert!(run_on(src).is_empty());
    }

    #[test]
    fn prior_comparison_counts_as_a_bound() {
        let src = "\
fn decode(buf: &[u8]) -> Option<Vec<u8>> {
    let count = read_u32(buf) as usize;
    if count > buf.len() / 12 { return None; }
    Some(Vec::with_capacity(count))
}
";
        assert!(run_on(src).is_empty());
    }

    #[test]
    fn caller_parameters_are_trusted() {
        let src = "fn new(universe: usize) -> Vec<u32> { Vec::with_capacity(universe) }";
        assert!(run_on(src).is_empty());
    }

    #[test]
    fn vec_macro_repeat_size_is_checked() {
        let src = "\
fn decode(buf: &[u8]) -> Vec<u64> {
    let n = read_u32(buf) as usize;
    vec![0u64; n]
}
fn fine(entries: &[u8]) -> Vec<u64> {
    let n = entries.len();
    vec![0u64; n]
}
fn list() -> Vec<u64> { vec![1, 2, 3] }
";
        let out = run_on(src);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 3);
    }
}
