//! `no-wallclock-in-sim`: wall-clock reads in deterministic code.
//!
//! flb-sim, flb-core and flb-kernel must be bit-reproducible: the
//! simulator's virtual clock is the only time source, and kernel
//! decisions must depend only on inputs. `Instant::now()` or
//! `SystemTime::now()` there breaks replayability.

use crate::context::FileCtx;
use crate::lexer::TokKind;
use crate::report::Finding;

pub const ID: &str = "no-wallclock-in-sim";

/// Path prefixes where wall-clock reads are forbidden.
const SCOPES: [&str; 3] = [
    "crates/flb-sim/src/",
    "crates/flb-core/src/",
    "crates/flb-kernel/src/",
];

const CLOCK_TYPES: [&str; 2] = ["Instant", "SystemTime"];

pub fn run(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if !SCOPES.iter().any(|s| ctx.rel_path.starts_with(s)) {
        return;
    }
    for i in ctx.code_tokens() {
        let tok = ctx.tokens[i];
        if tok.kind != TokKind::Ident || tok.text(&ctx.text) != "now" || ctx.in_test(tok.start) {
            continue;
        }
        // Walk back over `::` to the type name.
        let Some(c2) = ctx.prev_code(i) else { continue };
        let Some(c1) = ctx.prev_code(c2) else {
            continue;
        };
        let Some(ty) = ctx.prev_code(c1) else {
            continue;
        };
        if ctx.is_punct(c2, b':')
            && ctx.is_punct(c1, b':')
            && CLOCK_TYPES.iter().any(|t| ctx.is_ident(ty, t))
        {
            out.push(super::finding(
                ctx,
                ID,
                ctx.tokens[ty].start,
                format!(
                    "`{}::now()` reads the wall clock in deterministic code",
                    ctx.tokens[ty].text(&ctx.text)
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_on(path: &str, src: &str) -> Vec<Finding> {
        let ctx = FileCtx::new(path.into(), src.into());
        let mut out = Vec::new();
        run(&ctx, &mut out);
        out
    }

    #[test]
    fn flags_both_clock_types_in_scoped_crates() {
        let src = "\
fn f() {
    let a = std::time::Instant::now();
    let b = SystemTime::now();
}
";
        let out = run_on("crates/flb-sim/src/lib.rs", src);
        assert_eq!(out.len(), 2);
        assert!(out[0].message.contains("Instant::now()"));
    }

    #[test]
    fn service_crate_and_tests_may_read_the_clock() {
        let src = "fn f() { let _ = std::time::Instant::now(); }";
        assert!(run_on("crates/flb-service/src/server.rs", src).is_empty());
        let test_src = "\
#[cfg(test)]
mod tests {
    #[test]
    fn t() { let _ = std::time::Instant::now(); }
}
";
        assert!(run_on("crates/flb-core/src/lib.rs", test_src).is_empty());
    }

    #[test]
    fn unrelated_now_idents_are_fine() {
        let src = "fn f(now: u64) -> u64 { now + self.now }";
        assert!(run_on("crates/flb-kernel/src/run.rs", src).is_empty());
    }
}
