//! `no-panic-in-request-path`: panics past the flb-service
//! catch_unwind boundary.
//!
//! Request handling must answer malformed input with structured error
//! replies, never a worker panic. The rule flags `unwrap`/`expect`,
//! panicking macros, and (in the wire-facing files) `[]` indexing,
//! which can panic on out-of-range offsets.

use crate::context::FileCtx;
use crate::lexer::TokKind;
use crate::report::Finding;

pub const ID: &str = "no-panic-in-request-path";

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Files where `[]` indexing is also flagged: these parse wire bytes
/// (or, for `journal.rs`, bytes recovered from a possibly-torn disk),
/// so every index is a potential remote-triggered panic.
const INDEXING_FILES: [&str; 4] = ["proto.rs", "server.rs", "snapshot.rs", "journal.rs"];

/// Files exempt from the rule entirely: test harness transports and
/// the test client, which live in src/ but never run in a server.
const EXEMPT_FILES: [&str; 2] = ["chaos.rs", "client.rs"];

pub fn run(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if !ctx.rel_path.starts_with("crates/flb-service/src/") {
        return;
    }
    let file = ctx.rel_path.rsplit('/').next().unwrap_or("");
    if EXEMPT_FILES.contains(&file) {
        return;
    }
    let check_indexing = INDEXING_FILES.contains(&file);

    for i in ctx.code_tokens() {
        let tok = ctx.tokens[i];
        if ctx.in_test(tok.start) {
            continue;
        }
        match tok.kind {
            TokKind::Ident => {
                let text = tok.text(&ctx.text);
                if (text == "unwrap" || text == "expect")
                    && ctx.prev_code(i).is_some_and(|p| ctx.is_punct(p, b'.'))
                    && ctx.next_code(i).is_some_and(|n| ctx.is_punct(n, b'('))
                {
                    out.push(super::finding(
                        ctx,
                        ID,
                        tok.start,
                        format!("`.{text}()` can panic in the request path; return a structured error instead"),
                    ));
                } else if PANIC_MACROS.contains(&text)
                    && ctx.next_code(i).is_some_and(|n| ctx.is_punct(n, b'!'))
                {
                    out.push(super::finding(
                        ctx,
                        ID,
                        tok.start,
                        format!("`{text}!` in the request path"),
                    ));
                }
            }
            TokKind::Punct(b'[') if check_indexing && is_index_expr(ctx, i) => {
                out.push(super::finding(
                    ctx,
                    ID,
                    tok.start,
                    "`[]` indexing can panic on wire data; use `.get()` or waive with the bounds argument".into(),
                ));
            }
            _ => {}
        }
    }
}

/// `expr[…]` (prev token ends an expression) as opposed to array
/// literals, types, attributes, or slice patterns.
fn is_index_expr(ctx: &FileCtx, i: usize) -> bool {
    let Some(p) = ctx.prev_code(i) else {
        return false;
    };
    matches!(
        ctx.tokens[p].kind,
        TokKind::Ident | TokKind::Punct(b')') | TokKind::Punct(b']') | TokKind::Str
    ) && !ctx.is_ident(p, "mut")
        && !is_keyword_before_index(ctx, p)
}

/// `return [..]`, `let [..] =`, `in [..]` etc. start array literals or
/// patterns, not indexing.
fn is_keyword_before_index(ctx: &FileCtx, p: usize) -> bool {
    const KEYWORDS: [&str; 7] = ["return", "in", "if", "else", "match", "break", "let"];
    ctx.tokens[p].kind == TokKind::Ident && KEYWORDS.contains(&ctx.tokens[p].text(&ctx.text))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_on(path: &str, src: &str) -> Vec<Finding> {
        let ctx = FileCtx::new(path.into(), src.into());
        let mut out = Vec::new();
        run(&ctx, &mut out);
        out
    }

    #[test]
    fn flags_unwrap_expect_panics_and_indexing() {
        let src = "\
fn handle(buf: &[u8]) -> u32 {
    let a = buf.first().unwrap();
    let b = buf.get(1).expect(\"b\");
    if *a == 0 { panic!(\"zero\"); }
    let c = buf[2];
    u32::from(*a) + u32::from(*b) + u32::from(c)
}
";
        let out = run_on("crates/flb-service/src/proto.rs", src);
        let rules: Vec<u32> = out.iter().map(|f| f.line).collect();
        assert_eq!(rules, [2, 3, 4, 5]);
    }

    #[test]
    fn other_crates_and_exempt_files_are_ignored() {
        let src = "fn f(v: &[u8]) -> u8 { v[0] }";
        assert!(run_on("crates/flb-core/src/lib.rs", src).is_empty());
        assert!(run_on("crates/flb-service/src/chaos.rs", src).is_empty());
    }

    #[test]
    fn indexing_only_checked_in_wire_files() {
        let src = "fn f(v: &[u8]) -> u8 { v[0] }";
        assert!(run_on("crates/flb-service/src/overload.rs", src).is_empty());
        assert_eq!(run_on("crates/flb-service/src/snapshot.rs", src).len(), 1);
        // The journal decodes bytes read back from a possibly-torn disk:
        // indexing is held to the same standard as the wire files.
        assert_eq!(run_on("crates/flb-service/src/journal.rs", src).len(), 1);
        // The replay client is NOT exempt — a hostile trace must not be
        // able to panic the replay rig (only panic calls are flagged
        // there, like every other non-wire service file).
        let panicky = "fn g() { Option::<u8>::None.unwrap(); }";
        assert_eq!(run_on("crates/flb-service/src/replay.rs", panicky).len(), 1);
    }

    #[test]
    fn array_literals_attrs_and_unwrap_or_are_fine() {
        let src = "\
#[derive(Debug)]
struct S;
fn f(x: Option<u8>) -> [u8; 2] {
    let _ = x.unwrap_or(0);
    [0, 1]
}
";
        assert!(run_on("crates/flb-service/src/proto.rs", src).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "\
#[cfg(test)]
mod tests {
    #[test]
    fn t() { Some(1).unwrap(); }
}
";
        assert!(run_on("crates/flb-service/src/proto.rs", src).is_empty());
    }
}
