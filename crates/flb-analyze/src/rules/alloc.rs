//! `no-alloc-in-hot-loop`: heap allocation inside a
//! `// flb-analyze: region(no-alloc)` fence.
//!
//! The fence marks steady-state scheduling code (the flb-kernel run
//! loop and flat-list operations) whose allocation-freedom is also
//! pinned dynamically by a counting-allocator test; this rule catches
//! regressions at lint time and in code paths the test misses.

use crate::context::FileCtx;
use crate::lexer::TokKind;
use crate::report::Finding;

pub const ID: &str = "no-alloc-in-hot-loop";

/// Methods that (re)allocate on common std types.
const ALLOC_METHODS: [&str; 6] = [
    "push",
    "collect",
    "to_vec",
    "clone",
    "to_owned",
    "to_string",
];

/// Macros that build owned containers.
const ALLOC_MACROS: [&str; 2] = ["format", "vec"];

/// `Type::ctor` pairs that allocate eagerly.
const ALLOC_CTORS: [(&str, &str); 4] = [
    ("Box", "new"),
    ("Vec", "with_capacity"),
    ("String", "from"),
    ("String", "with_capacity"),
];

pub fn run(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if ctx.pragmas.regions.iter().all(|r| r.name != "no-alloc") {
        return;
    }
    for i in ctx.code_tokens() {
        let tok = ctx.tokens[i];
        if tok.kind != TokKind::Ident
            || !ctx.in_region("no-alloc", tok.start)
            || ctx.in_test(tok.start)
        {
            continue;
        }
        let text = tok.text(&ctx.text);

        // `x.push(…)`, `iter.collect…`
        if ALLOC_METHODS.contains(&text)
            && ctx.prev_code(i).is_some_and(|p| ctx.is_punct(p, b'.'))
            && ctx
                .next_code(i)
                .is_some_and(|n| ctx.is_punct(n, b'(') || ctx.is_punct(n, b':'))
        {
            out.push(super::finding(
                ctx,
                ID,
                tok.start,
                format!("`.{text}()` allocates inside a region(no-alloc) fence"),
            ));
            continue;
        }

        // `format!(…)`, `vec![…]`
        if ALLOC_MACROS.contains(&text) && ctx.next_code(i).is_some_and(|n| ctx.is_punct(n, b'!')) {
            out.push(super::finding(
                ctx,
                ID,
                tok.start,
                format!("`{text}!` allocates inside a region(no-alloc) fence"),
            ));
            continue;
        }

        // `Box::new(…)`, `Vec::with_capacity(…)`
        if let Some(j) = path_ctor(ctx, i, text) {
            out.push(super::finding(
                ctx,
                ID,
                tok.start,
                format!(
                    "`{text}::{}` allocates inside a region(no-alloc) fence",
                    ctx.tokens[j].text(&ctx.text)
                ),
            ));
        }
    }
}

/// If token `i` is the type of a known allocating `Type::ctor` path,
/// returns the ctor token index.
fn path_ctor(ctx: &FileCtx, i: usize, text: &str) -> Option<usize> {
    if !ALLOC_CTORS.iter().any(|(t, _)| *t == text) {
        return None;
    }
    let c1 = ctx.next_code(i)?;
    let c2 = ctx.next_code(c1)?;
    let m = ctx.next_code(c2)?;
    if !(ctx.is_punct(c1, b':') && ctx.is_punct(c2, b':')) {
        return None;
    }
    let mtext = ctx.tokens.get(m)?.text(&ctx.text);
    ALLOC_CTORS
        .iter()
        .any(|(t, c)| *t == text && *c == mtext)
        .then_some(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_on(src: &str) -> Vec<Finding> {
        let ctx = FileCtx::new("crates/x/src/lib.rs".into(), src.into());
        let mut out = Vec::new();
        run(&ctx, &mut out);
        out
    }

    #[test]
    fn flags_only_inside_the_fence() {
        let src = "\
fn cold(v: &mut Vec<u32>) { v.push(1); }
// flb-analyze: region(no-alloc)
fn hot(v: &mut Vec<u32>) {
    v.push(1);
    let b = Box::new(2);
    let s = format!(\"x\");
}
// flb-analyze: region-end(no-alloc)
fn cold2() -> Vec<u32> { vec![1] }
";
        let out = run_on(src);
        let lines: Vec<u32> = out.iter().map(|f| f.line).collect();
        assert_eq!(lines, [4, 5, 6]);
        assert!(out.iter().all(|f| f.rule == ID));
    }

    #[test]
    fn collect_turbofish_is_flagged() {
        let src = "\
// flb-analyze: region(no-alloc)
fn hot(it: std::slice::Iter<u32>) -> Vec<u32> { it.copied().collect::<Vec<u32>>() }
// flb-analyze: region-end(no-alloc)
";
        assert_eq!(run_on(src).len(), 1);
    }
}
