//! `lock-order`: deadlock-prone lock acquisition cycles.
//!
//! The static half of race readiness: every `.lock()` / zero-argument
//! `.read()` / `.write()` on a named place (`self.queue.lock()` →
//! class `queue`) is an acquisition. Within a function, a let-bound
//! guard is held to the end of its enclosing block, an inline temporary
//! to the end of its statement; acquiring `b` while `a` is held adds
//! the edge `a → b`. Edges union across the crate, and every edge that
//! lies on a cycle is flagged at its acquisition site. A *same-class*
//! acquisition while held (`inboxes[a].lock()` holding `inboxes[b]` —
//! an indexed lock collection) is a self-edge and always flagged: two
//! threads taking different members in opposite index orders deadlock,
//! and the analysis cannot prove indices ordered. The dynamic half is
//! the `lockcheck` feature of the vendored parking_lot stub.

use crate::context::FileCtx;
use crate::lexer::TokKind;
use crate::report::Finding;

pub const ID: &str = "lock-order";

/// One observed ordered acquisition: `acquired` was taken at
/// `file:line` while `held` was held.
#[derive(Clone, Debug)]
pub struct Edge {
    pub held: String,
    pub acquired: String,
    pub file: String,
    pub line: u32,
    pub col: u32,
    pub snippet: String,
    pub fn_name: String,
}

/// Collects intra-function ordering edges from one file.
#[must_use]
pub fn collect_edges(ctx: &FileCtx) -> Vec<Edge> {
    let mut edges = Vec::new();
    for f in &ctx.fns {
        if f.is_test || f.body_tokens.is_empty() {
            continue;
        }
        // (class, token index past which the guard is dropped)
        let mut held: Vec<(String, usize)> = Vec::new();
        for i in f.body_tokens.clone() {
            held.retain(|h| h.1 > i);
            let Some(class) = acquisition_class(ctx, i) else {
                continue;
            };
            let tok = ctx.tokens[i];
            for (h, _) in &held {
                // A same-class pair (`h == class`) is kept as a
                // self-edge: for indexed lock collections
                // (`inboxes[a].lock()` holding `inboxes[b]`) two
                // threads with opposite index orders deadlock, and no
                // static analysis can prove the indices ordered.
                edges.push(Edge {
                    held: h.clone(),
                    acquired: class.clone(),
                    file: ctx.rel_path.clone(),
                    line: ctx.line_of(tok.start),
                    col: ctx.col_of(tok.start),
                    snippet: ctx.line_text(tok.start).trim().to_owned(),
                    fn_name: f.name.clone(),
                });
            }
            let scope_end = if is_let_bound(ctx, i, f.body_tokens.start) {
                enclosing_block_close(ctx, i, f.body_tokens.end)
            } else {
                statement_end(ctx, i, f.body_tokens.end)
            };
            held.push((class, scope_end));
        }
    }
    edges
}

/// Flags every edge lying on a cycle of the unioned crate graph.
pub fn check_crate(edges: &[Edge], out: &mut Vec<Finding>) {
    for e in edges {
        if reaches(edges, &e.acquired, &e.held) {
            let message = if e.acquired == e.held {
                format!(
                    "lock-order re-entry: `{}` acquired while a `{}` guard is already held (in `{}`) — two threads taking different members of the class in opposite orders deadlock",
                    e.acquired, e.held, e.fn_name
                )
            } else {
                format!(
                    "lock-order cycle: `{}` acquired while holding `{}` (in `{}`), but the crate also acquires them in the opposite order",
                    e.acquired, e.held, e.fn_name
                )
            };
            out.push(Finding {
                rule: ID.to_owned(),
                file: e.file.clone(),
                line: e.line,
                col: e.col,
                message,
                snippet: e.snippet.clone(),
                waived: None,
            });
        }
    }
}

/// Whether `from` can reach `to` along the edge set.
fn reaches(edges: &[Edge], from: &str, to: &str) -> bool {
    let mut stack = vec![from];
    let mut seen: Vec<&str> = Vec::new();
    while let Some(n) = stack.pop() {
        if n == to {
            return true;
        }
        if seen.contains(&n) {
            continue;
        }
        seen.push(n);
        for e in edges {
            if e.held == n {
                stack.push(&e.acquired);
            }
        }
    }
    false
}

/// If token `i` is a zero-argument `.lock()`/`.read()`/`.write()`
/// call, returns the lock class (the place name it was called on).
fn acquisition_class(ctx: &FileCtx, i: usize) -> Option<String> {
    let tok = *ctx.tokens.get(i)?;
    if tok.kind != TokKind::Ident {
        return None;
    }
    let text = tok.text(&ctx.text);
    if !matches!(text, "lock" | "read" | "write") {
        return None;
    }
    let dot = ctx.prev_code(i)?;
    let open = ctx.next_code(i)?;
    let close = ctx.next_code(open)?;
    if !(ctx.is_punct(dot, b'.') && ctx.is_punct(open, b'(') && ctx.is_punct(close, b')')) {
        return None;
    }
    // Walk back from the `.` to the place name, skipping one balanced
    // `(…)` / `[…]` group (`shards[i].lock()`, `self.shard(i).lock()`).
    let mut j = ctx.prev_code(dot)?;
    if ctx.is_punct(j, b')') || ctx.is_punct(j, b']') {
        let open_b = if ctx.is_punct(j, b')') { b'(' } else { b'[' };
        let close_b = if ctx.is_punct(j, b')') { b')' } else { b']' };
        let mut depth = 1usize;
        while depth > 0 {
            j = ctx.prev_code(j)?;
            if ctx.is_punct(j, close_b) {
                depth += 1;
            } else if ctx.is_punct(j, open_b) {
                depth -= 1;
            }
        }
        j = ctx.prev_code(j)?;
    }
    let name = *ctx.tokens.get(j)?;
    (name.kind == TokKind::Ident).then(|| name.text(&ctx.text).to_owned())
}

/// Whether the statement containing token `i` starts with `let`.
fn is_let_bound(ctx: &FileCtx, i: usize, body_start: usize) -> bool {
    let mut j = i;
    while j > body_start {
        j -= 1;
        match ctx.tokens[j].kind {
            TokKind::Punct(b';') | TokKind::Punct(b'{') | TokKind::Punct(b'}') => return false,
            TokKind::Ident if ctx.tokens[j].text(&ctx.text) == "let" => return true,
            _ => {}
        }
    }
    false
}

/// Token index of the `;` (or closing `}`) ending the statement
/// containing `i`.
fn statement_end(ctx: &FileCtx, i: usize, body_end: usize) -> usize {
    let mut depth = 0usize;
    for j in i..body_end {
        match ctx.tokens[j].kind {
            TokKind::Punct(b'{') | TokKind::Punct(b'(') | TokKind::Punct(b'[') => depth += 1,
            TokKind::Punct(b'}') | TokKind::Punct(b')') | TokKind::Punct(b']') => {
                if depth == 0 {
                    return j;
                }
                depth -= 1;
            }
            TokKind::Punct(b';') if depth == 0 => return j,
            _ => {}
        }
    }
    body_end
}

/// Token index of the `}` closing the innermost block containing `i`.
fn enclosing_block_close(ctx: &FileCtx, i: usize, body_end: usize) -> usize {
    let mut depth = 0usize;
    for j in i..body_end {
        match ctx.tokens[j].kind {
            TokKind::Punct(b'{') => depth += 1,
            TokKind::Punct(b'}') => {
                if depth == 0 {
                    return j;
                }
                depth -= 1;
            }
            _ => {}
        }
    }
    body_end
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edges_of(src: &str) -> Vec<Edge> {
        collect_edges(&FileCtx::new("crates/x/src/lib.rs".into(), src.into()))
    }

    #[test]
    fn nested_let_guards_make_an_edge() {
        let src = "\
fn f(&self) {
    let a = self.alpha.lock();
    let b = self.beta.lock();
    drop(b); drop(a);
}
";
        let e = edges_of(src);
        assert_eq!(e.len(), 1);
        assert_eq!(
            (e[0].held.as_str(), e[0].acquired.as_str()),
            ("alpha", "beta")
        );
    }

    #[test]
    fn inline_temporary_is_released_at_statement_end() {
        let src = "\
fn f(&self) {
    self.alpha.lock().push_back(1);
    let b = self.beta.lock();
    drop(b);
}
";
        assert!(edges_of(src).is_empty());
    }

    #[test]
    fn let_guard_is_released_at_block_end() {
        let src = "\
fn f(&self) {
    { let a = self.alpha.lock(); drop(a); }
    let b = self.beta.lock();
    drop(b);
}
";
        assert!(edges_of(src).is_empty());
    }

    #[test]
    fn io_read_with_arguments_is_not_an_acquisition() {
        let src = "\
fn f(&self, stream: &mut std::net::TcpStream, buf: &mut [u8]) {
    let a = self.alpha.lock();
    stream.read(buf).ok();
    drop(a);
}
";
        assert!(edges_of(src).is_empty());
    }

    #[test]
    fn opposite_orders_form_a_cycle() {
        let src = "\
fn f(&self) {
    let a = self.alpha.lock();
    let b = self.beta.lock();
    drop(b); drop(a);
}
fn g(&self) {
    let b = self.beta.lock();
    let a = self.alpha.lock();
    drop(a); drop(b);
}
";
        let edges = edges_of(src);
        let mut out = Vec::new();
        check_crate(&edges, &mut out);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|f| f.rule == ID));
    }

    #[test]
    fn same_class_reentry_is_a_self_edge_and_always_fires() {
        let src = "\
fn f(&self) {
    let a = self.inboxes[0].lock();
    let b = self.inboxes[1].lock();
    drop(b); drop(a);
}
";
        let edges = edges_of(src);
        assert_eq!(edges.len(), 1);
        assert_eq!(
            (edges[0].held.as_str(), edges[0].acquired.as_str()),
            ("inboxes", "inboxes")
        );
        let mut out = Vec::new();
        check_crate(&edges, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("re-entry"), "{}", out[0].message);
    }

    #[test]
    fn consistent_order_across_functions_is_fine() {
        let src = "\
fn f(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); drop(b); drop(a); }
fn g(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); drop(b); drop(a); }
";
        let edges = edges_of(src);
        let mut out = Vec::new();
        check_crate(&edges, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn indexed_and_call_receivers_get_a_class() {
        let src = "\
fn f(&self) {
    let a = self.shards[0].lock();
    let b = self.table(1).lock();
    drop(b); drop(a);
}
";
        let e = edges_of(src);
        assert_eq!(e.len(), 1);
        assert_eq!(
            (e[0].held.as_str(), e[0].acquired.as_str()),
            ("shards", "table")
        );
    }
}
