//! flb-analyze: project-invariant static analysis for the FLB
//! workspace.
//!
//! A hand-rolled lossless Rust lexer ([`lexer`]) feeds per-file
//! contexts ([`context`]) to a registry of FLB-specific rules
//! ([`rules`]): allocation fences, panic-free request paths, simulator
//! determinism, lock ordering, and bounded decode allocations.
//! Findings can be waived inline with reasoned pragmas ([`pragma`])
//! and are rendered for humans or as stable `flb-analyze/v1` JSON
//! ([`report`]). `flb lint` and the `lint-smoke` CI job are thin
//! wrappers over [`analyze_workspace`].

pub mod context;
pub mod lexer;
pub mod pragma;
pub mod report;
pub mod rules;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use context::FileCtx;
use report::{Finding, Report};

/// Hygiene rule: a malformed `flb-analyze:` pragma (cannot be waived —
/// a typo here would otherwise silently disable a waiver).
pub const RULE_BAD_PRAGMA: &str = "bad-pragma";

/// Hygiene rule: an `allow` that matched no finding (cannot be waived —
/// stale waivers hide future regressions).
pub const RULE_STALE_WAIVER: &str = "stale-waiver";

/// Directory names never descended into during a workspace walk.
const SKIP_DIRS: [&str; 5] = ["target", "vendor", ".git", "golden", "node_modules"];

/// Analyzes in-memory `(workspace-relative path, text)` pairs.
///
/// Pure entry point used by the golden tests; [`analyze_workspace`]
/// reads from disk and delegates here.
#[must_use]
pub fn analyze_files(files: Vec<(String, String)>) -> Report {
    let ctxs: Vec<FileCtx> = files
        .into_iter()
        .map(|(path, text)| FileCtx::new(path, text))
        .collect();

    let mut findings = Vec::new();
    for ctx in &ctxs {
        rules::run_file_rules(ctx, &mut findings);
    }

    // Crate-level pass: union lock edges per crate, then check cycles.
    let mut crates: Vec<(String, Vec<rules::lock_order::Edge>)> = Vec::new();
    for ctx in &ctxs {
        let key = crate_key(&ctx.rel_path);
        let edges = rules::lock_order::collect_edges(ctx);
        match crates.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => v.extend(edges),
            None => crates.push((key, edges)),
        }
    }
    for (_, edges) in &crates {
        rules::lock_order::check_crate(edges, &mut findings);
    }

    // Waiver application: an allow matches findings of its rule on the
    // line it applies to, in its own file.
    let mut used = Vec::new();
    for f in &mut findings {
        let Some(ctx) = ctxs.iter().find(|c| c.rel_path == f.file) else {
            continue;
        };
        for (ai, a) in ctx.pragmas.allows.iter().enumerate() {
            if a.rule == f.rule && a.applies_line == f.line {
                f.waived = Some(a.reason.clone());
                used.push((f.file.clone(), ai));
                break;
            }
        }
    }

    // Hygiene findings (never waivable).
    for ctx in &ctxs {
        for b in &ctx.pragmas.bad {
            findings.push(Finding {
                rule: RULE_BAD_PRAGMA.to_owned(),
                file: ctx.rel_path.clone(),
                line: b.line,
                col: 1,
                message: b.message.clone(),
                snippet: line_at(ctx, b.line),
                waived: None,
            });
        }
        for (ai, a) in ctx.pragmas.allows.iter().enumerate() {
            if !used.contains(&(ctx.rel_path.clone(), ai)) {
                findings.push(Finding {
                    rule: RULE_STALE_WAIVER.to_owned(),
                    file: ctx.rel_path.clone(),
                    line: a.line,
                    col: 1,
                    message: format!(
                        "allow({}) matched no finding on line {}; remove the stale waiver",
                        a.rule, a.applies_line
                    ),
                    snippet: line_at(ctx, a.line),
                    waived: None,
                });
            }
        }
    }

    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.col,
            b.rule.as_str(),
        ))
    });
    Report {
        findings,
        files_scanned: ctxs.len(),
    }
}

/// Walks `root` for `.rs` files (skipping [`SKIP_DIRS`]) and analyzes
/// them.
pub fn analyze_workspace(root: &Path) -> io::Result<Report> {
    let mut paths = Vec::new();
    walk(root, root, &mut paths)?;
    paths.sort();
    let mut files = Vec::new();
    for rel in paths {
        let text = fs::read_to_string(root.join(&rel))?;
        files.push((rel, text));
    }
    Ok(analyze_files(files))
}

/// Names of functions whose bodies lie entirely inside a
/// `region(name)` … `region-end(name)` fence, in source order.
///
/// The flb-kernel counting-allocator test uses this to assert that the
/// dynamically-verified allocation-free functions are exactly the ones
/// the `no-alloc-in-hot-loop` rule watches — one source of truth for
/// the fence boundaries.
#[must_use]
pub fn fenced_functions(text: &str, region: &str) -> Vec<String> {
    let ctx = FileCtx::new("fenced.rs".to_owned(), text.to_owned());
    ctx.fns
        .iter()
        .filter(|f| {
            !f.body.is_empty()
                && ctx.pragmas.regions.iter().any(|r| {
                    r.name == region
                        && ctx.line_of(f.start) > r.open_line
                        && ctx.line_of(f.body.end - 1) < r.close_line
                })
        })
        .map(|f| f.name.clone())
        .collect()
}

/// Groups files into their owning crate for cross-file passes.
fn crate_key(rel_path: &str) -> String {
    match rel_path.find("/src/") {
        Some(i) => rel_path[..i].to_owned(),
        None => rel_path
            .rsplit_once('/')
            .map_or_else(|| rel_path.to_owned(), |(d, _)| d.to_owned()),
    }
}

fn line_at(ctx: &FileCtx, line: u32) -> String {
    ctx.text
        .lines()
        .nth(line as usize - 1)
        .unwrap_or("")
        .trim()
        .to_owned()
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push(rel_str(root, &path));
        }
    }
    Ok(())
}

fn rel_str(root: &Path, path: &Path) -> String {
    let rel: PathBuf = path.strip_prefix(root).unwrap_or(path).to_path_buf();
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waivers_suppress_and_stale_ones_are_flagged() {
        let src = "\
fn f(v: &[u8]) -> u8 {
    v[0] // flb-analyze: allow(no-panic-in-request-path, reason=\"caller checks len\")
}
// flb-analyze: allow(no-panic-in-request-path, reason=\"nothing here\")
fn g() {}
";
        let report = analyze_files(vec![(
            "crates/flb-service/src/proto.rs".to_owned(),
            src.to_owned(),
        )]);
        let waived: Vec<_> = report
            .findings
            .iter()
            .filter(|f| f.waived.is_some())
            .collect();
        assert_eq!(waived.len(), 1);
        assert_eq!(waived[0].rule, "no-panic-in-request-path");
        let unwaived: Vec<_> = report.unwaived().collect();
        assert_eq!(unwaived.len(), 1);
        assert_eq!(unwaived[0].rule, RULE_STALE_WAIVER);
    }

    #[test]
    fn bad_pragmas_become_findings() {
        let src = "// flb-analyze: allow(no-panic-in-request-path)\nfn f() {}\n";
        let report = analyze_files(vec![("crates/x/src/lib.rs".to_owned(), src.to_owned())]);
        assert_eq!(report.unwaived().count(), 1);
        assert_eq!(report.findings[0].rule, RULE_BAD_PRAGMA);
    }

    #[test]
    fn lock_edges_union_across_files_of_one_crate() {
        let a =
            "pub fn f(s: &S) { let a = s.alpha.lock(); let b = s.beta.lock(); drop(b); drop(a); }";
        let b =
            "pub fn g(s: &S) { let b = s.beta.lock(); let a = s.alpha.lock(); drop(a); drop(b); }";
        let report = analyze_files(vec![
            ("crates/x/src/a.rs".to_owned(), a.to_owned()),
            ("crates/x/src/b.rs".to_owned(), b.to_owned()),
        ]);
        assert_eq!(report.unwaived().count(), 2);
        // The same two files in different crates share no graph.
        let report = analyze_files(vec![
            ("crates/x/src/a.rs".to_owned(), a.to_owned()),
            ("crates/y/src/b.rs".to_owned(), b.to_owned()),
        ]);
        assert_eq!(report.unwaived().count(), 0);
    }

    #[test]
    fn fenced_functions_reports_fully_enclosed_fns() {
        let src = "\
fn outside() {}
// flb-analyze: region(no-alloc)
fn a() {}
fn b() {}
// flb-analyze: region-end(no-alloc)
fn after() {}
";
        assert_eq!(fenced_functions(src, "no-alloc"), ["a", "b"]);
        assert!(fenced_functions(src, "other").is_empty());
    }
}
