//! Findings and their human / JSON renderings.
//!
//! The JSON layout is a stable contract (`flb-analyze/v1`): CI parses
//! it with the flb-bench hand-rolled JSON parser, so field names and
//! nesting must not change without bumping the schema string.

/// Identifier of the JSON layout emitted by [`render_json`].
pub const SCHEMA: &str = "flb-analyze/v1";

/// One rule violation (possibly waived).
#[derive(Clone, Debug)]
pub struct Finding {
    /// Rule id, e.g. `no-alloc-in-hot-loop`.
    pub rule: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What went wrong.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// `Some(reason)` if an `allow` pragma waived this finding.
    pub waived: Option<String>,
}

/// The result of an analysis run.
#[derive(Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
}

impl Report {
    /// Findings not covered by a waiver.
    pub fn unwaived(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.waived.is_none())
    }

    /// Human-readable rendering, unwaived findings first.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in self.unwaived() {
            out.push_str(&format!(
                "{}:{}:{}: [{}] {}\n    {}\n",
                f.file, f.line, f.col, f.rule, f.message, f.snippet
            ));
        }
        let waived = self.findings.len() - self.unwaived().count();
        if waived > 0 {
            out.push_str(&format!("waived ({waived}):\n"));
            for f in self.findings.iter().filter(|f| f.waived.is_some()) {
                out.push_str(&format!(
                    "    {}:{}: [{}] {}\n",
                    f.file,
                    f.line,
                    f.rule,
                    f.waived.as_deref().unwrap_or("")
                ));
            }
        }
        out.push_str(&format!(
            "{} file(s) scanned, {} finding(s), {} unwaived\n",
            self.files_scanned,
            self.findings.len(),
            self.unwaived().count()
        ));
        out
    }

    /// Stable machine-readable rendering (schema [`SCHEMA`]).
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{{\n  \"schema\": {},\n", quote(SCHEMA)));
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"rule\": {}, ", quote(&f.rule)));
            out.push_str(&format!("\"file\": {}, ", quote(&f.file)));
            out.push_str(&format!("\"line\": {}, ", f.line));
            out.push_str(&format!("\"col\": {}, ", f.col));
            out.push_str(&format!("\"message\": {}, ", quote(&f.message)));
            out.push_str(&format!("\"snippet\": {}, ", quote(&f.snippet)));
            match &f.waived {
                Some(r) => out.push_str(&format!("\"waived\": true, \"reason\": {}", quote(r))),
                None => out.push_str("\"waived\": false, \"reason\": null"),
            }
            out.push('}');
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        let waived = self.findings.len() - self.unwaived().count();
        out.push_str(&format!(
            "  \"summary\": {{\"files_scanned\": {}, \"total\": {}, \"waived\": {}, \"unwaived\": {}}}\n}}\n",
            self.files_scanned,
            self.findings.len(),
            waived,
            self.unwaived().count()
        ));
        out
    }
}

/// JSON string escaping.
#[must_use]
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            findings: vec![
                Finding {
                    rule: "no-wallclock-in-sim".into(),
                    file: "crates/flb-sim/src/lib.rs".into(),
                    line: 10,
                    col: 5,
                    message: "wall-clock read in deterministic code".into(),
                    snippet: "let t = Instant::now();".into(),
                    waived: None,
                },
                Finding {
                    rule: "lock-order".into(),
                    file: "crates/flb-service/src/server.rs".into(),
                    line: 42,
                    col: 9,
                    message: "cycle".into(),
                    snippet: "b.lock()".into(),
                    waived: Some("startup only".into()),
                },
            ],
            files_scanned: 2,
        }
    }

    #[test]
    fn text_output_lists_unwaived_then_waived() {
        let text = sample().render_text();
        assert!(text.contains("[no-wallclock-in-sim]"));
        assert!(text.contains("waived (1):"));
        assert!(text.contains("2 finding(s), 1 unwaived"));
    }

    #[test]
    fn json_output_has_schema_and_escapes() {
        let json = sample().render_json();
        assert!(json.contains("\"schema\": \"flb-analyze/v1\""));
        assert!(json.contains("\"waived\": false"));
        assert!(json.contains("\"reason\": \"startup only\""));
        assert_eq!(quote("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
