//! Golden input: an unclamped decode allocation carrying a waiver.
//! Analyzed as `crates/flb-service/src/frame.rs`.

pub fn decode(buf: &[u8]) -> Vec<u8> {
    let count = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    // flb-analyze: allow(bounded-decode-alloc, reason="the transport layer already rejects frames over MAX_FRAME before this decoder runs")
    Vec::with_capacity(count)
}
