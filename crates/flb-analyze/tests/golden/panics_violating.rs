//! Golden input: panics in the request path.
//! Analyzed as `crates/flb-service/src/proto.rs` (a wire-facing file,
//! so `[]` indexing is flagged too).

pub fn decode(buf: &[u8]) -> u32 {
    let first = buf.first().unwrap(); // finding: unwrap
    let second = buf.get(1).expect("second byte"); // finding: expect
    if *first == 0xFF {
        panic!("reserved marker"); // finding: panic!
    }
    let third = buf[2]; // finding: wire indexing
    u32::from(*first) + u32::from(*second) + u32::from(third)
}
