//! Golden input: the same same-class re-entry, waived with the one
//! argument that makes it sound — a crate-wide total order on the
//! indices, which is exactly what the analysis cannot see.
//! Analyzed as `crates/flb-par/src/shared.rs`.

use parking_lot::Mutex;

pub struct Mailboxes {
    inboxes: Vec<Mutex<Vec<u32>>>,
}

impl Mailboxes {
    pub fn transfer(&self, from: usize, to: usize) {
        let (lo, hi) = (from.min(to), from.max(to));
        let mut first = self.inboxes[lo].lock();
        // flb-analyze: allow(lock-order, reason="members are always taken in ascending index order (lo < hi enforced one line up), so no two threads can hold them in opposite orders")
        let mut second = self.inboxes[hi].lock();
        second.append(&mut first);
    }
}
