//! Golden input: panics in the journal recovery path.
//! Analyzed as `crates/flb-service/src/journal.rs` — the journal decodes
//! bytes read back from a possibly-torn disk, so it is held to the wire
//! standard: `[]` indexing is flagged alongside unwrap/expect/panic.

pub fn decode_frame(buf: &[u8]) -> u64 {
    let len = buf.first().unwrap(); // finding: unwrap
    if *len == 0 {
        panic!("empty journal frame"); // finding: panic!
    }
    let checksum = buf[1]; // finding: torn-disk indexing
    u64::from(*len) + u64::from(checksum)
}
