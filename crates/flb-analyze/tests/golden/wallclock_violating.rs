//! Golden input: wall-clock reads inside deterministic code.
//! Analyzed as `crates/flb-sim/src/clock.rs`.

use std::time::{Instant, SystemTime};

pub fn stamp() -> u64 {
    let t0 = Instant::now(); // finding: Instant::now in sim code
    let wall = SystemTime::now(); // finding: SystemTime::now
    drop(wall);
    t0.elapsed().as_nanos() as u64
}
