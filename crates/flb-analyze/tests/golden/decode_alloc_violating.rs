//! Golden input: allocations sized straight from decoded wire values.
//! Analyzed as `crates/flb-service/src/frame.rs`.

pub fn decode(buf: &[u8]) -> (Vec<u8>, Vec<u64>) {
    let count = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    let body = Vec::with_capacity(count); // finding: unclamped count
    let table = vec![0u64; count]; // finding: unclamped vec! size
    (body, table)
}
