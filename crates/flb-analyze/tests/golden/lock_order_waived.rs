//! Golden input: the same inversion, waived. A cycle is reported at
//! *every* acquisition that participates in it, so each direction
//! carries its own justification — silencing one end must not hide
//! the other.
//! Analyzed as `crates/flb-service/src/workers.rs`.

use parking_lot::Mutex;

pub struct Pool {
    queue: Mutex<Vec<u32>>,
    handles: Mutex<Vec<u32>>,
}

impl Pool {
    pub fn submit(&self, job: u32) {
        let mut q = self.queue.lock();
        // flb-analyze: allow(lock-order, reason="submit only runs before the pool starts; drain's inversion cannot interleave with it")
        let h = self.handles.lock();
        q.push(job + h.len() as u32);
    }

    pub fn drain(&self) {
        let mut h = self.handles.lock();
        // flb-analyze: allow(lock-order, reason="drain only runs after shutdown when no submitter thread is alive; the inversion cannot interleave")
        let q = self.queue.lock();
        h.extend(q.iter().copied());
    }
}
