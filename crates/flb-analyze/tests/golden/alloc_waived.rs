//! Golden input: the same fence, with the push waived.
//! Analyzed as `crates/flb-kernel/src/hot.rs`.

pub struct Hot {
    buf: Vec<u32>,
}

impl Hot {
    // flb-analyze: region(no-alloc)

    pub fn step(&mut self, x: u32) {
        // flb-analyze: allow(no-alloc-in-hot-loop, reason="buf is preallocated to the task universe in the constructor")
        self.buf.push(x);
    }

    // flb-analyze: region-end(no-alloc)
}
