//! Golden input: a bounds-guarded journal indexing site, waived.
//! Analyzed as `crates/flb-service/src/journal.rs`.

pub fn frame_header(buf: &[u8]) -> Option<u64> {
    if buf.len() < 12 {
        return None;
    }
    // flb-analyze: allow(no-panic-in-request-path, reason="the len() < 12 guard above makes buf[4..12] in bounds")
    let checksum = &buf[4..12];
    Some(u64::from_le_bytes(checksum.try_into().ok()?))
}
