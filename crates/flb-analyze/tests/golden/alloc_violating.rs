//! Golden input: allocations inside a `no-alloc` fence.
//! Analyzed as `crates/flb-kernel/src/hot.rs`.

pub struct Hot {
    buf: Vec<u32>,
}

impl Hot {
    // flb-analyze: region(no-alloc)

    pub fn step(&mut self, x: u32) -> String {
        self.buf.push(x); // finding: push allocates
        let all: Vec<u32> = self.buf.iter().copied().collect(); // finding: collect
        let boxed = Box::new(all.len()); // finding: Box::new
        format!("{boxed}") // finding: format!
    }

    // flb-analyze: region-end(no-alloc)

    pub fn outside(&mut self, x: u32) {
        self.buf.push(x); // clean: outside the fence
    }
}
