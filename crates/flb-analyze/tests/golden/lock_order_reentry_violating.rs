//! Golden input: same-class re-entry on an indexed lock collection —
//! the lock class the sharded scheduler introduces (one `Mutex` per
//! shard mailbox). Holding two members at once deadlocks the moment a
//! second thread takes them in the opposite index order, and no static
//! analysis can prove the indices ordered.
//! Analyzed as `crates/flb-par/src/shared.rs`.

use parking_lot::Mutex;

pub struct Mailboxes {
    inboxes: Vec<Mutex<Vec<u32>>>,
}

impl Mailboxes {
    pub fn transfer(&self, from: usize, to: usize) {
        let mut src = self.inboxes[from].lock();
        let mut dst = self.inboxes[to].lock(); // self-edge: inboxes -> inboxes
        dst.append(&mut src);
    }
}
