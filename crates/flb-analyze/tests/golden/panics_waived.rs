//! Golden input: an indexing site with a bounds argument, waived.
//! Analyzed as `crates/flb-service/src/proto.rs`.

pub fn decode(buf: &[u8]) -> Option<u32> {
    if buf.len() < 4 {
        return None;
    }
    // flb-analyze: allow(no-panic-in-request-path, reason="the len() < 4 guard above makes buf[0..4] in bounds")
    let word = &buf[0..4];
    Some(u32::from_le_bytes(word.try_into().ok()?))
}
