//! Golden input: a waived wall-clock read (a real measurement probe).
//! Analyzed as `crates/flb-sim/src/clock.rs`.

use std::time::Instant;

pub fn measure<F: FnOnce()>(f: F) -> u64 {
    // flb-analyze: allow(no-wallclock-in-sim, reason="this is the benchmarking probe itself; it never feeds simulated time")
    let t0 = Instant::now();
    f();
    t0.elapsed().as_nanos() as u64
}
