//! Golden input: two functions acquiring the same locks in opposite
//! orders — a deadlock waiting for the right interleaving.
//! Analyzed as `crates/flb-service/src/workers.rs`.

use parking_lot::Mutex;

pub struct Pool {
    queue: Mutex<Vec<u32>>,
    handles: Mutex<Vec<u32>>,
}

impl Pool {
    pub fn submit(&self, job: u32) {
        let mut q = self.queue.lock();
        let h = self.handles.lock(); // edge: queue -> handles
        q.push(job + h.len() as u32);
    }

    pub fn drain(&self) {
        let mut h = self.handles.lock();
        let q = self.queue.lock(); // edge: handles -> queue (cycle!)
        h.extend(q.iter().copied());
    }
}
