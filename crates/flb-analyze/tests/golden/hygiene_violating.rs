//! Golden input: pragma hygiene — a reasonless waiver, an unknown
//! directive, an unclosed region, and a waiver that matches nothing.
//! Analyzed as `crates/flb-kernel/src/hygiene.rs`.

// flb-analyze: allow(no-alloc-in-hot-loop)
// flb-analyze: frobnicate(all-the-things)
// flb-analyze: region(no-alloc)

pub fn clean() -> u32 {
    // flb-analyze: allow(no-wallclock-in-sim, reason="stale: nothing here reads a clock")
    41 + 1
}
