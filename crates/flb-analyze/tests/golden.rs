//! Golden-file suite: every rule demonstrated firing on a violating
//! snippet AND silenced by a reasoned waiver on its twin.
//!
//! The snippets live in `tests/golden/` (a directory the workspace
//! walker skips, so the repo's own lint gate never sees them) and are
//! analyzed under the synthetic paths their rules scope to. Assertions
//! pin rule ids, line numbers, and waiver plumbing — if a heuristic
//! drifts, the diff shows up here first.

use flb_analyze::analyze_files;
use flb_analyze::report::Report;

/// Analyzes one golden snippet under the rel-path its rule scopes to.
fn analyze(rel_path: &str, golden: &str) -> Report {
    analyze_files(vec![(rel_path.to_owned(), golden.to_owned())])
}

/// `(rule, line)` of unwaived findings, in report order.
fn unwaived(report: &Report) -> Vec<(&str, u32)> {
    report
        .unwaived()
        .map(|f| (f.rule.as_str(), f.line))
        .collect()
}

#[test]
fn alloc_rule_fires_inside_the_fence_only() {
    let report = analyze(
        "crates/flb-kernel/src/hot.rs",
        include_str!("golden/alloc_violating.rs"),
    );
    let got = unwaived(&report);
    assert_eq!(
        got,
        [
            ("no-alloc-in-hot-loop", 12), // push
            ("no-alloc-in-hot-loop", 13), // collect
            ("no-alloc-in-hot-loop", 14), // Box::new
            ("no-alloc-in-hot-loop", 15), // format!
        ],
        "full findings: {:#?}",
        report.findings
    );
}

#[test]
fn alloc_rule_is_silenced_by_a_reasoned_waiver() {
    let report = analyze(
        "crates/flb-kernel/src/hot.rs",
        include_str!("golden/alloc_waived.rs"),
    );
    assert_eq!(unwaived(&report), []);
    let waived: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.waived.is_some())
        .collect();
    assert_eq!(waived.len(), 1);
    assert!(waived[0]
        .waived
        .as_deref()
        .unwrap()
        .contains("preallocated"));
}

#[test]
fn panic_rule_fires_on_unwrap_expect_panic_and_wire_indexing() {
    let report = analyze(
        "crates/flb-service/src/proto.rs",
        include_str!("golden/panics_violating.rs"),
    );
    let got = unwaived(&report);
    assert_eq!(
        got,
        [
            ("no-panic-in-request-path", 6),  // unwrap
            ("no-panic-in-request-path", 7),  // expect
            ("no-panic-in-request-path", 9),  // panic!
            ("no-panic-in-request-path", 11), // buf[2]
        ],
        "full findings: {:#?}",
        report.findings
    );
}

#[test]
fn panic_rule_indexing_waiver_requires_the_bounds_argument() {
    let report = analyze(
        "crates/flb-service/src/proto.rs",
        include_str!("golden/panics_waived.rs"),
    );
    assert_eq!(unwaived(&report), []);
    let waived: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.waived.is_some())
        .collect();
    assert_eq!(waived.len(), 1);
    assert!(waived[0].waived.as_deref().unwrap().contains("guard"));
}

#[test]
fn panic_rule_holds_the_journal_to_the_wire_standard() {
    let report = analyze(
        "crates/flb-service/src/journal.rs",
        include_str!("golden/panics_journal_violating.rs"),
    );
    let got = unwaived(&report);
    assert_eq!(
        got,
        [
            ("no-panic-in-request-path", 7),  // unwrap
            ("no-panic-in-request-path", 9),  // panic!
            ("no-panic-in-request-path", 11), // buf[1] on torn-disk bytes
        ],
        "full findings: {:#?}",
        report.findings
    );
    // The replay client is scoped but not wire-indexed: the same source
    // under replay.rs drops the indexing finding, keeps the panics.
    let replay = analyze(
        "crates/flb-service/src/replay.rs",
        include_str!("golden/panics_journal_violating.rs"),
    );
    assert_eq!(
        unwaived(&replay),
        [
            ("no-panic-in-request-path", 7),
            ("no-panic-in-request-path", 9),
        ],
        "full findings: {:#?}",
        replay.findings
    );
}

#[test]
fn panic_rule_journal_indexing_waiver_requires_the_bounds_argument() {
    let report = analyze(
        "crates/flb-service/src/journal.rs",
        include_str!("golden/panics_journal_waived.rs"),
    );
    assert_eq!(unwaived(&report), [], "full: {:#?}", report.findings);
    let waived: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.waived.is_some())
        .collect();
    assert_eq!(waived.len(), 1);
    assert!(waived[0].waived.as_deref().unwrap().contains("guard"));
}

#[test]
fn wallclock_rule_fires_in_sim_scoped_crates() {
    let report = analyze(
        "crates/flb-sim/src/clock.rs",
        include_str!("golden/wallclock_violating.rs"),
    );
    let got = unwaived(&report);
    assert_eq!(
        got,
        [("no-wallclock-in-sim", 7), ("no-wallclock-in-sim", 8)],
        "full findings: {:#?}",
        report.findings
    );
    // The same source outside the scoped crates is clean.
    let elsewhere = analyze(
        "crates/flb-cli/src/clock.rs",
        include_str!("golden/wallclock_violating.rs"),
    );
    assert_eq!(unwaived(&elsewhere), []);
}

#[test]
fn wallclock_rule_waiver_names_the_probe() {
    let report = analyze(
        "crates/flb-sim/src/clock.rs",
        include_str!("golden/wallclock_waived.rs"),
    );
    assert_eq!(unwaived(&report), []);
    assert!(report
        .findings
        .iter()
        .any(|f| f.waived.as_deref().is_some_and(|r| r.contains("probe"))));
}

#[test]
fn lock_order_rule_fires_on_an_inverted_pair() {
    let report = analyze(
        "crates/flb-service/src/workers.rs",
        include_str!("golden/lock_order_violating.rs"),
    );
    let got = unwaived(&report);
    // Both directions of the cycle are reported, one per function.
    assert_eq!(got.len(), 2, "full findings: {:#?}", report.findings);
    assert!(got.iter().all(|(rule, _)| *rule == "lock-order"));
    let msgs: Vec<&str> = report.unwaived().map(|f| f.message.as_str()).collect();
    assert!(
        msgs.iter()
            .any(|m| m.contains("queue") && m.contains("handles")),
        "messages must name both lock classes: {msgs:?}"
    );
}

#[test]
fn lock_order_rule_waiver_covers_each_acquisition_site() {
    let report = analyze(
        "crates/flb-service/src/workers.rs",
        include_str!("golden/lock_order_waived.rs"),
    );
    assert_eq!(unwaived(&report), [], "full: {:#?}", report.findings);
    // The cycle fires at both of its acquisition sites, and each one
    // carries its own justification.
    let reasons: Vec<&str> = report
        .findings
        .iter()
        .filter_map(|f| f.waived.as_deref())
        .collect();
    assert_eq!(reasons.len(), 2);
    assert!(reasons.iter().any(|r| r.contains("shutdown")));
    assert!(reasons.iter().any(|r| r.contains("before the pool starts")));
}

#[test]
fn lock_order_rule_fires_on_same_class_reentry() {
    let report = analyze(
        "crates/flb-par/src/shared.rs",
        include_str!("golden/lock_order_reentry_violating.rs"),
    );
    let got = unwaived(&report);
    // The self-edge fires once, at the second acquisition.
    assert_eq!(got, [("lock-order", 17)], "full: {:#?}", report.findings);
    let msg = report
        .unwaived()
        .next()
        .map(|f| f.message.as_str())
        .unwrap();
    assert!(
        msg.contains("re-entry") && msg.contains("inboxes"),
        "message must name the re-entered class: {msg}"
    );
}

#[test]
fn lock_order_reentry_waiver_names_the_index_order_argument() {
    let report = analyze(
        "crates/flb-par/src/shared.rs",
        include_str!("golden/lock_order_reentry_waived.rs"),
    );
    assert_eq!(unwaived(&report), [], "full: {:#?}", report.findings);
    let reasons: Vec<&str> = report
        .findings
        .iter()
        .filter_map(|f| f.waived.as_deref())
        .collect();
    assert_eq!(reasons.len(), 1);
    assert!(reasons[0].contains("ascending index order"));
}

#[test]
fn decode_alloc_rule_fires_on_unclamped_wire_sizes() {
    let report = analyze(
        "crates/flb-service/src/frame.rs",
        include_str!("golden/decode_alloc_violating.rs"),
    );
    let got = unwaived(&report);
    assert_eq!(
        got,
        [("bounded-decode-alloc", 6), ("bounded-decode-alloc", 7)],
        "full findings: {:#?}",
        report.findings
    );
}

#[test]
fn decode_alloc_rule_waiver_names_the_upstream_bound() {
    let report = analyze(
        "crates/flb-service/src/frame.rs",
        include_str!("golden/decode_alloc_waived.rs"),
    );
    assert_eq!(unwaived(&report), []);
    assert!(report
        .findings
        .iter()
        .any(|f| f.waived.as_deref().is_some_and(|r| r.contains("MAX_FRAME"))));
}

#[test]
fn hygiene_findings_cannot_be_waived_away() {
    let report = analyze(
        "crates/flb-kernel/src/hygiene.rs",
        include_str!("golden/hygiene_violating.rs"),
    );
    let got = unwaived(&report);
    let rules: Vec<&str> = got.iter().map(|(r, _)| *r).collect();
    // A reasonless allow, an unknown directive, and an unclosed region
    // are malformed pragmas; the well-formed allow that matches no
    // finding is stale.
    assert_eq!(
        rules,
        ["bad-pragma", "bad-pragma", "bad-pragma", "stale-waiver"],
        "full findings: {:#?}",
        report.findings
    );
}
