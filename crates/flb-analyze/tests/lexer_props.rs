//! Property suite for the hand-rolled lexer.
//!
//! The lexer is the foundation every rule stands on, and it must accept
//! *anything* — the workspace walk feeds it whatever `.rs` files exist,
//! including ones mid-edit or generated. The properties pinned here:
//!
//! * lexing never panics, on arbitrary Unicode strings and on arbitrary
//!   byte soup (lossily decoded);
//! * spans are in source order, non-overlapping, and land on character
//!   boundaries (so `Token::text` round-trips through the source);
//! * every non-whitespace byte outside no token is impossible: the
//!   union of spans covers all non-whitespace bytes;
//! * the tricky corners of Rust's lexical grammar tokenize the way the
//!   rules assume (nested comments, raw-string fences, lifetimes vs
//!   chars, byte strings).

use flb_analyze::lexer::{lex, TokKind};
use proptest::prelude::*;

/// Structural invariants every lex result must satisfy.
fn check_invariants(src: &str) {
    let toks = lex(src);
    let mut prev_end = 0usize;
    for t in &toks {
        assert!(t.start < t.end, "empty span {t:?} in {src:?}");
        assert!(t.start >= prev_end, "overlap at {t:?} in {src:?}");
        assert!(t.end <= src.len(), "span past EOF {t:?} in {src:?}");
        assert!(
            src.is_char_boundary(t.start) && src.is_char_boundary(t.end),
            "span off a char boundary {t:?} in {src:?}"
        );
        // text() round-trips: the slice is really there.
        assert_eq!(t.text(src).len(), t.end - t.start);
        // Bytes between tokens are whitespace only.
        assert!(
            src[prev_end..t.start].chars().all(char::is_whitespace),
            "dropped non-whitespace byte before {t:?} in {src:?}"
        );
        prev_end = t.end;
    }
    assert!(
        src[prev_end..].chars().all(char::is_whitespace),
        "dropped trailing bytes in {src:?}"
    );
}

proptest! {
    /// Arbitrary well-formed Unicode strings: never panic, full
    /// coverage. (The vendored proptest has no string strategies, so
    /// strings are built from arbitrary scalar values.)
    #[test]
    fn arbitrary_strings_lex_clean(points in proptest::collection::vec(any::<u32>(), 0..256)) {
        let src: String = points.into_iter().filter_map(char::from_u32).collect();
        check_invariants(&src);
    }

    /// Arbitrary raw bytes, lossily decoded — simulates mangled files.
    #[test]
    fn arbitrary_bytes_lex_clean(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        check_invariants(&src);
    }

    /// Rust-shaped fragments stitched from the constructs the rules
    /// walk over, including deliberately unterminated ones.
    #[test]
    fn rusty_fragments_lex_clean(parts in proptest::collection::vec(
        prop_oneof![
            Just("fn f() {}".to_owned()),
            Just("let x = \"str with \\\" quote\";".to_owned()),
            Just("r##\"raw \" fence\"##".to_owned()),
            Just("br#\"bytes\"#".to_owned()),
            Just("/* outer /* inner */ still comment */".to_owned()),
            Just("// line comment".to_owned()),
            Just("'a' b'\\n' 'lifetime".to_owned()),
            Just("1_000.5e-3f64 0xFF_u8 1..n".to_owned()),
            Just("\"unterminated".to_owned()),
            Just("/* unterminated".to_owned()),
            Just("r#\"unterminated raw".to_owned()),
            proptest::collection::vec(0u8..36, 1..9).prop_map(|ds| {
                // Random short identifier (digits remapped to letters).
                ds.into_iter()
                    .map(|d| (b'a' + d % 26) as char)
                    .collect::<String>()
            }).boxed(),
        ],
        0..12,
    )) {
        check_invariants(&parts.join(" "));
        check_invariants(&parts.join("\n"));
        check_invariants(&parts.concat());
    }
}

#[test]
fn nested_block_comments_are_one_token() {
    let src = "a /* one /* two /* three */ */ */ b";
    let toks = lex(src);
    let kinds: Vec<TokKind> = toks.iter().map(|t| t.kind).collect();
    assert_eq!(
        kinds,
        [TokKind::Ident, TokKind::BlockComment, TokKind::Ident]
    );
    assert_eq!(toks[1].text(src), "/* one /* two /* three */ */ */");
}

#[test]
fn raw_strings_respect_hash_fences() {
    // The inner `"#` must not close a `##`-fenced string.
    let src = r####"let s = r##"has "# inside"## ; done"####;
    let toks = lex(src);
    let s = toks.iter().find(|t| t.kind == TokKind::Str).unwrap();
    assert_eq!(s.text(src), r####"r##"has "# inside"##"####);
    assert!(toks
        .iter()
        .any(|t| t.kind == TokKind::Ident && t.text(src) == "done"));
}

#[test]
fn lifetimes_and_chars_are_distinguished() {
    let src = "fn f<'a>(x: &'a u8) { let c = 'q'; let esc = '\\''; let b = b'z'; 'outer: loop { break 'outer; } }";
    let toks = lex(src);
    let lifetimes: Vec<&str> = toks
        .iter()
        .filter(|t| t.kind == TokKind::Lifetime)
        .map(|t| t.text(src))
        .collect();
    let chars: Vec<&str> = toks
        .iter()
        .filter(|t| t.kind == TokKind::Char)
        .map(|t| t.text(src))
        .collect();
    assert_eq!(lifetimes, ["'a", "'a", "'outer", "'outer"]);
    assert_eq!(chars, ["'q'", "'\\''", "b'z'"]);
}

#[test]
fn byte_strings_lex_as_strings() {
    let src = "let b = b\"raw bytes \\\" here\"; let r = br\"no escapes\";";
    let toks = lex(src);
    let strs: Vec<&str> = toks
        .iter()
        .filter(|t| t.kind == TokKind::Str)
        .map(|t| t.text(src))
        .collect();
    assert_eq!(strs, ["b\"raw bytes \\\" here\"", "br\"no escapes\""]);
}

#[test]
fn comment_markers_inside_strings_stay_strings() {
    let src = "let s = \"not a // comment\"; let t = \"nor /* this */\"; real();";
    let toks = lex(src);
    assert!(toks
        .iter()
        .all(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment)));
    assert!(toks
        .iter()
        .any(|t| t.kind == TokKind::Ident && t.text(src) == "real"));
}
