//! # flb — Fast Load Balancing for distributed-memory machines
//!
//! A complete Rust implementation of the FLB compile-time task-scheduling
//! system of Rădulescu & van Gemund (ICPP 1999), including every substrate
//! and baseline of the paper's evaluation:
//!
//! * the weighted task-DAG model with workload generators ([`graph`]),
//! * the machine/schedule substrate with validation and metrics ([`sched`]),
//! * the FLB algorithm itself with tracing and the ETF-equivalence oracle
//!   ([`core`]),
//! * the comparison algorithms ETF, MCP, FCP and DSC-LLB ([`baselines`]),
//! * a discrete-event execution simulator ([`sim`]),
//! * the paper's workload suites ([`workloads`]),
//! * a scheduler-as-a-service daemon with fingerprint caching ([`service`]),
//! * a differential/metamorphic conformance harness with a counterexample
//!   shrinker and replayable corpus ([`conformance`]).
//!
//! The most common types are re-exported at the crate root and in
//! [`prelude`].
//!
//! ## Quickstart
//!
//! ```
//! use flb::prelude::*;
//!
//! // A 2000-task LU-decomposition workload at CCR 1.0.
//! let topology = Family::Lu.topology(2000);
//! let graph = CostModel::paper_default(1.0).apply(&topology, 42);
//!
//! // Schedule it on 8 processors with FLB.
//! let schedule = Flb::default().schedule(&graph, &Machine::new(8));
//! assert!(validate(&graph, &schedule).is_ok());
//! println!("makespan: {}", schedule.makespan());
//! println!("speedup:  {:.2}", speedup(&graph, &schedule));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use flb_baselines as baselines;
pub use flb_conformance as conformance;
pub use flb_core as core;
pub use flb_ds as ds;
pub use flb_graph as graph;
pub use flb_sched as sched;
pub use flb_service as service;
pub use flb_sim as sim;
pub use flb_workloads as workloads;

/// One-stop imports for typical use.
pub mod prelude {
    pub use flb_baselines::{Dls, DscLlb, Etf, Fcp, Heft, Hlfet, Mcp};
    pub use flb_conformance::{run_suite, Instance, Violation};
    pub use flb_core::{schedule_request, AlgorithmId, ScheduleRequest};
    pub use flb_core::{Flb, TieBreak};
    pub use flb_graph::costs::{CostModel, Dist};
    pub use flb_graph::gen::Family;
    pub use flb_graph::{TaskGraph, TaskGraphBuilder, TaskId};
    pub use flb_sched::metrics::{efficiency, nsl, speedup, summarise};
    pub use flb_sched::validate::validate;
    pub use flb_sched::{Machine, ProcId, Schedule, Scheduler};
    pub use flb_service::{serve, Client, Endpoint, ServiceConfig, Submission};
    pub use flb_sim::simulate;
    pub use flb_workloads::SuiteSpec;
}
